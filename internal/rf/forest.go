package rf

import (
	"errors"
	"math"
	"math/rand"

	"slamgo/internal/parallel"
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	// Trees is the ensemble size.
	Trees int
	// Tree configures the individual CARTs; MTry=0 defaults to d/3
	// (regression convention).
	Tree TreeConfig
	// Seed makes training deterministic.
	Seed int64
	// Workers bounds how many trees are fit concurrently; 0 means
	// GOMAXPROCS. The trained forest is identical for every worker count
	// because each tree's RNG is seeded by a serial pre-draw.
	Workers int
}

// DefaultForestConfig mirrors the scikit-learn defaults HyperMapper used.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{
		Trees: 40,
		Tree:  TreeConfig{MaxDepth: 14, MinLeaf: 2},
		Seed:  1,
	}
}

// Forest is a bagged ensemble of regression trees with uncertainty
// estimates from ensemble disagreement — the acquisition signal of the
// active-learning loop.
type Forest struct {
	trees []*RegressionTree
	dims  int
}

// FitForest trains a forest on X (n×d), y (n).
func FitForest(X [][]float64, y []float64, cfg ForestConfig) (*Forest, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("rf: empty or mismatched training data")
	}
	if cfg.Trees < 1 {
		cfg.Trees = 1
	}
	d := len(X[0])
	if cfg.Tree.MTry <= 0 {
		cfg.Tree.MTry = max(1, d/3)
	}
	// Per-tree seeds are drawn serially so the ensemble is byte-identical
	// for any worker count; the trees themselves fit concurrently.
	rng := rand.New(rand.NewSource(cfg.Seed))
	seeds := make([]int64, cfg.Trees)
	for t := range seeds {
		seeds[t] = rng.Int63()
	}
	n := len(X)
	type fitted struct {
		tree *RegressionTree
		err  error
	}
	results := parallel.MapOrdered(cfg.Workers, seeds, func(_ int, seed int64) fitted {
		trng := rand.New(rand.NewSource(seed))
		// Bootstrap sample.
		bx := make([][]float64, n)
		by := make([]float64, n)
		for i := 0; i < n; i++ {
			j := trng.Intn(n)
			bx[i] = X[j]
			by[i] = y[j]
		}
		tree, err := FitRegression(bx, by, cfg.Tree, trng)
		return fitted{tree: tree, err: err}
	})
	f := &Forest{dims: d}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		f.trees = append(f.trees, r.tree)
	}
	return f, nil
}

// Predict returns the ensemble mean for x.
func (f *Forest) Predict(x []float64) float64 {
	m, _ := f.PredictWithStd(x)
	return m
}

// PredictWithStd returns the ensemble mean and standard deviation
// (epistemic uncertainty proxy) for x.
func (f *Forest) PredictWithStd(x []float64) (mean, std float64) {
	var s, s2 float64
	for _, t := range f.trees {
		v := t.Predict(x)
		s += v
		s2 += v * v
	}
	n := float64(len(f.trees))
	mean = s / n
	variance := s2/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance)
}

// Trees returns the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }

// Dims returns the feature dimensionality.
func (f *Forest) Dims() int { return f.dims }

// R2Score computes the coefficient of determination of predictions on a
// held-out set — the sanity metric the DSE loop logs.
func (f *Forest) R2Score(X [][]float64, y []float64) float64 {
	if len(X) == 0 || len(X) != len(y) {
		return math.NaN()
	}
	var m float64
	for _, v := range y {
		m += v
	}
	m /= float64(len(y))
	var ssRes, ssTot float64
	for i, x := range X {
		d := y[i] - f.Predict(x)
		ssRes += d * d
		t := y[i] - m
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}
