package rf

import (
	"math/rand"
	"testing"
)

// randomTraining builds a synthetic regression problem.
func randomTraining(n, d int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64() * 10
		}
		X[i] = row
		y[i] = row[0]*row[0] + 3*row[1%d] - row[(d-1)%d] + rng.NormFloat64()*0.1
	}
	return X, y
}

// TestFlatForestGoldenEquivalence is the golden contract of the flat
// inference engine: on randomized inputs, FlatForest predictions are
// bit-identical to the pointer-tree Forest they were compiled from.
func TestFlatForestGoldenEquivalence(t *testing.T) {
	X, y := randomTraining(120, 6, 11)
	cfg := DefaultForestConfig()
	cfg.Seed = 5
	f, err := FitForest(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ff := f.Flatten()
	if ff.Trees() != f.Trees() {
		t.Fatalf("flat trees %d != %d", ff.Trees(), f.Trees())
	}
	if ff.Dims() != f.Dims() {
		t.Fatalf("flat dims %d != %d", ff.Dims(), f.Dims())
	}
	if ff.Nodes() == 0 {
		t.Fatal("empty flat forest")
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		x := make([]float64, 6)
		for j := range x {
			// Mix in-range, negative and far-out-of-range queries.
			x[j] = rng.Float64()*30 - 10
		}
		wantM, wantS := f.PredictWithStd(x)
		gotM, gotS := ff.PredictWithStd(x)
		if gotM != wantM || gotS != wantS {
			t.Fatalf("query %d: flat (%v, %v) != pointer (%v, %v)", i, gotM, gotS, wantM, wantS)
		}
		if p := ff.Predict(x); p != f.Predict(x) {
			t.Fatalf("query %d: Predict diverges", i)
		}
	}
}

// TestFlatForestBatchMatchesScalar checks the matrix entry points
// against the scalar walk, for every worker count.
func TestFlatForestBatchMatchesScalar(t *testing.T) {
	X, y := randomTraining(80, 4, 3)
	cfg := DefaultForestConfig()
	cfg.Trees = 17
	f, err := FitForest(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ff := f.Flatten()

	const rows = 333
	rng := rand.New(rand.NewSource(7))
	Xm := make([]float64, rows*4)
	for i := range Xm {
		Xm[i] = rng.Float64()*12 - 2
	}
	wantMean := make([]float64, rows)
	wantStd := make([]float64, rows)
	for i := 0; i < rows; i++ {
		wantMean[i], wantStd[i] = ff.PredictWithStd(Xm[i*4 : (i+1)*4])
	}

	mean := make([]float64, rows)
	std := make([]float64, rows)
	ff.PredictWithStdInto(Xm, mean, std)
	for i := range mean {
		if mean[i] != wantMean[i] || std[i] != wantStd[i] {
			t.Fatalf("PredictWithStdInto row %d diverges", i)
		}
	}

	out := make([]float64, rows)
	ff.PredictInto(Xm, out)
	for i := range out {
		if out[i] != wantMean[i] {
			t.Fatalf("PredictInto row %d diverges", i)
		}
	}

	for _, workers := range []int{1, 4, 8} {
		clear(mean)
		clear(std)
		ff.PredictBatch(Xm, mean, std, workers)
		for i := range mean {
			if mean[i] != wantMean[i] || std[i] != wantStd[i] {
				t.Fatalf("PredictBatch workers=%d row %d diverges", workers, i)
			}
		}
	}
}

// TestFlatForestShapeChecks covers the defensive panics.
func TestFlatForestShapeChecks(t *testing.T) {
	X, y := randomTraining(20, 3, 1)
	f, err := FitForest(X, y, ForestConfig{Trees: 3, Tree: TreeConfig{MaxDepth: 4, MinLeaf: 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ff := f.Flatten()
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic on malformed shapes", name)
			}
		}()
		fn()
	}
	expectPanic("PredictInto", func() { ff.PredictInto(make([]float64, 5), make([]float64, 2)) })
	expectPanic("PredictWithStdInto", func() {
		ff.PredictWithStdInto(make([]float64, 6), make([]float64, 2), make([]float64, 1))
	})
	expectPanic("PredictBatch", func() {
		ff.PredictBatch(make([]float64, 7), make([]float64, 2), make([]float64, 2), 2)
	})
}
