// Package rf implements the learning machinery HyperMapper relies on,
// from scratch on the standard library: CART regression trees, bootstrap-
// aggregated random-forest regressors (the paper's surrogate model for
// active learning), and Gini classification trees whose paths render as
// the human-readable "knowledge" rules of Figure 2 (right).
package rf

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// TreeConfig controls CART induction.
type TreeConfig struct {
	// MaxDepth bounds the tree height (≥1).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (≥1).
	MinLeaf int
	// MTry is the number of features considered per split; 0 means all.
	MTry int
}

// DefaultTreeConfig returns a reasonable unconstrained CART setup.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 12, MinLeaf: 2}
}

type node struct {
	leaf      bool
	value     float64 // regression prediction or class index
	feature   int
	threshold float64
	left      *node
	right     *node
	samples   int
	impurity  float64
	// mass is the sample-weighted impurity used for feature importance:
	// SSE for regression, Gini×samples for classification.
	mass float64
}

// RegressionTree is one CART regressor.
type RegressionTree struct {
	root     *node
	features int
	cfg      TreeConfig
}

// FitRegression grows a regression tree on X (n×d) and y (n). rng drives
// feature sub-sampling when cfg.MTry > 0; it may be nil when MTry is 0.
//
// The induction runs on a fixed workspace: nodes come from a
// preallocated arena (a binary tree over n samples has at most 2n-1
// nodes, so the arena never reallocates and node pointers stay valid),
// candidate splits sort a reused index scratch, and the winning split
// partitions the node's index slice in place. Fitting a tree therefore
// costs a handful of allocations however deep it grows.
func FitRegression(X [][]float64, y []float64, cfg TreeConfig, rng *rand.Rand) (*RegressionTree, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("rf: empty or mismatched training data")
	}
	d := len(X[0])
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("rf: row %d has %d features, want %d", i, len(row), d)
		}
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	ws := &growWorkspace{
		arena: make([]node, 0, 2*len(X)+1),
		order: make([]int, len(X)),
		feats: make([]int, d),
	}
	ws.sorter.X = X
	t := &RegressionTree{features: d, cfg: cfg}
	t.root = t.grow(X, y, idx, 0, rng, ws)
	return t, nil
}

// growWorkspace is the per-tree scratch of FitRegression.
type growWorkspace struct {
	// arena stores every node; its capacity covers the worst-case node
	// count so pointers into it survive appends.
	arena []node
	// order is the sort scratch candidate splits reuse.
	order []int
	// feats is the candidate-feature scratch.
	feats []int
	// sorter is the reusable sort.Interface for feature-ordered sorts.
	sorter featSorter
}

// newNode appends a node to the arena and returns its stable address.
func (ws *growWorkspace) newNode(nd node) *node {
	if len(ws.arena) == cap(ws.arena) {
		// Unreachable: the arena capacity bounds any binary tree over the
		// training set. Guard anyway — growing would move earlier nodes.
		panic("rf: node arena overflow")
	}
	ws.arena = append(ws.arena, nd)
	return &ws.arena[len(ws.arena)-1]
}

// featSorter sorts an index slice by one feature column without
// allocating (the same *featSorter is reused for every sort).
type featSorter struct {
	X   [][]float64
	idx []int
	f   int
}

func (s *featSorter) Len() int           { return len(s.idx) }
func (s *featSorter) Less(a, b int) bool { return s.X[s.idx[a]][s.f] < s.X[s.idx[b]][s.f] }
func (s *featSorter) Swap(a, b int)      { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// sortByFeature orders idx ascending by feature f.
func (ws *growWorkspace) sortByFeature(idx []int, f int) {
	ws.sorter.idx = idx
	ws.sorter.f = f
	sort.Sort(&ws.sorter)
}

func mean(y []float64, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func sse(y []float64, idx []int) float64 {
	m := mean(y, idx)
	s := 0.0
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s
}

func (t *RegressionTree) grow(X [][]float64, y []float64, idx []int, depth int, rng *rand.Rand, ws *growWorkspace) *node {
	n := ws.newNode(node{samples: len(idx), value: mean(y, idx), impurity: sse(y, idx)})
	n.mass = n.impurity
	if depth >= t.cfg.MaxDepth || len(idx) < 2*t.cfg.MinLeaf || n.impurity < 1e-12 {
		n.leaf = true
		return n
	}

	feats := t.candidateFeatures(rng, ws)
	bestFeat, bestThresh := -1, 0.0
	bestScore := n.impurity
	bestK := -1

	order := ws.order[:len(idx)]
	for _, f := range feats {
		k, thresh, score, ok := bestSplitOn(X, y, idx, f, t.cfg.MinLeaf, order, ws)
		if ok && score < bestScore-1e-12 {
			bestScore = score
			bestFeat = f
			bestThresh = thresh
			bestK = k
		}
	}
	if bestFeat < 0 {
		n.leaf = true
		return n
	}
	// Recover the winning partition by re-sorting the node's own index
	// slice by the chosen feature (same input, same sort — same order the
	// split position was computed against), then recurse on the two
	// sub-slices: the partition costs no allocation.
	ws.sortByFeature(idx, bestFeat)
	n.feature = bestFeat
	n.threshold = bestThresh
	n.left = t.grow(X, y, idx[:bestK+1], depth+1, rng, ws)
	n.right = t.grow(X, y, idx[bestK+1:], depth+1, rng, ws)
	return n
}

func (t *RegressionTree) candidateFeatures(rng *rand.Rand, ws *growWorkspace) []int {
	all := ws.feats[:t.features]
	for i := range all {
		all[i] = i
	}
	if t.cfg.MTry <= 0 || t.cfg.MTry >= t.features || rng == nil {
		return all
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:t.cfg.MTry]
}

// bestSplitOn finds the SSE-minimising threshold for one feature using a
// sorted sweep with incremental statistics over the reused order scratch
// (len(order) == len(idx)). It returns the split position k in
// feature-sorted order (left = first k+1 entries) rather than
// materialising the partition.
func bestSplitOn(X [][]float64, y []float64, idx []int, f, minLeaf int, order []int, ws *growWorkspace) (splitK int, thresh, score float64, ok bool) {
	copy(order, idx)
	ws.sortByFeature(order, f)

	n := len(order)
	// Suffix statistics.
	var sumAll, sum2All float64
	for _, i := range order {
		sumAll += y[i]
		sum2All += y[i] * y[i]
	}
	var sumL, sum2L float64
	best := math.Inf(1)
	bestK := -1
	for k := 0; k < n-1; k++ {
		yi := y[order[k]]
		sumL += yi
		sum2L += yi * yi
		if k+1 < minLeaf || n-k-1 < minLeaf {
			continue
		}
		// Skip ties: can't split between equal feature values.
		if X[order[k]][f] == X[order[k+1]][f] {
			continue
		}
		nl := float64(k + 1)
		nr := float64(n - k - 1)
		sumR := sumAll - sumL
		sum2R := sum2All - sum2L
		sseL := sum2L - sumL*sumL/nl
		sseR := sum2R - sumR*sumR/nr
		if s := sseL + sseR; s < best {
			best = s
			bestK = k
		}
	}
	if bestK < 0 {
		return -1, 0, 0, false
	}
	thresh = (X[order[bestK]][f] + X[order[bestK+1]][f]) / 2
	return bestK, thresh, best, true
}

// Predict evaluates the tree on one feature vector.
func (t *RegressionTree) Predict(x []float64) float64 {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the tree height (leaf-only tree has depth 1).
func (t *RegressionTree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// String renders the tree structure with feature names f0..fd.
func (t *RegressionTree) String() string {
	var b strings.Builder
	var walk func(n *node, indent string)
	walk = func(n *node, indent string) {
		if n.leaf {
			fmt.Fprintf(&b, "%s→ %.4f (n=%d)\n", indent, n.value, n.samples)
			return
		}
		fmt.Fprintf(&b, "%sf%d ≤ %.4f?\n", indent, n.feature, n.threshold)
		walk(n.left, indent+"  ")
		walk(n.right, indent+"  ")
	}
	walk(t.root, "")
	return b.String()
}
