// Benchmarks regenerating every figure-level experiment of the paper.
// One bench (or bench family) per experiment id from DESIGN.md:
//
//	E1/Fig1   BenchmarkFig1_PipelineDefault, BenchmarkFig1_GUIPanes
//	E2/Fig2L  BenchmarkFig2_Evaluate*, BenchmarkFig2_SurrogateFit,
//	          BenchmarkFig2_ActiveLearningStep
//	E3/Fig2R  BenchmarkFig2_KnowledgeExtraction
//	E4/Head   BenchmarkHeadline_DefaultXU3, BenchmarkHeadline_TunedXU3
//	E5/Fig3   BenchmarkFig3_PhoneSweep
//	E6/Base   BenchmarkBaseline_Odometry
//	Ablation  BenchmarkKernel_* (per-kernel costs behind the trade-off)
package slamgo_test

import (
	"math/rand"
	"sync"
	"testing"

	"slamgo/internal/camera"
	"slamgo/internal/core"
	"slamgo/internal/dataset"
	"slamgo/internal/device"
	"slamgo/internal/hypermapper"
	"slamgo/internal/imgproc"
	"slamgo/internal/kfusion"
	"slamgo/internal/math3"
	"slamgo/internal/odometry"
	"slamgo/internal/phones"
	"slamgo/internal/rf"
	"slamgo/internal/slambench"
	"slamgo/internal/tsdf"
)

// ---- shared fixtures (rendered once per process) ----

var (
	seqOnce  sync.Once
	benchSeq *dataset.MemorySequence
)

func sequence(b *testing.B) *dataset.MemorySequence {
	b.Helper()
	seqOnce.Do(func() {
		s, err := dataset.LivingRoomKT(0, dataset.PresetOptions{
			Width: 160, Height: 120, Frames: 24, FPS: 30, Noisy: true, Seed: 42,
		})
		if err != nil {
			panic(err)
		}
		benchSeq = s
	})
	return benchSeq
}

// tunedConfig is a representative DSE outcome: ~4-8× cheaper than the
// default while staying under the accuracy limit at evaluation scale.
func tunedConfig() kfusion.Config {
	cfg := kfusion.DefaultConfig()
	cfg.VolumeResolution = 128
	cfg.ComputeSizeRatio = 2
	cfg.IntegrationRate = 2
	cfg.PyramidIterations = [3]int{4, 3, 3}
	return cfg
}

func runOnce(b *testing.B, cfg kfusion.Config, model *device.Model) *slambench.Summary {
	b.Helper()
	seq := sequence(b)
	sum, err := (&slambench.Runner{Model: model}).Run(slambench.NewKFusion(cfg, seq), seq)
	if err != nil {
		b.Fatal(err)
	}
	return sum
}

// ---- E1 / Figure 1: the instrumented pipeline ----

// BenchmarkFig1_PipelineDefault measures one full pipeline frame
// (preprocess + track + integrate + raycast) under the stock
// configuration — the workload behind the GUI's live metrics.
func BenchmarkFig1_PipelineDefault(b *testing.B) {
	seq := sequence(b)
	f0, _ := seq.Frame(0)
	p, err := kfusion.New(kfusion.DefaultConfig(), seq.Intrinsics(), f0.GroundTruth)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _ := seq.Frame(i % seq.Len())
		if _, err := p.ProcessFrame(f.Depth); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1_GUIPanes measures rendering the four GUI panes of one
// frame (depth colormap, track status, shaded model view, 2×2 mosaic).
func BenchmarkFig1_GUIPanes(b *testing.B) {
	seq := sequence(b)
	f0, _ := seq.Frame(0)
	cfg := tunedConfig()
	p, err := kfusion.New(cfg, seq.Intrinsics(), f0.GroundTruth)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.ProcessFrame(f0.Depth); err != nil {
		b.Fatal(err)
	}
	ref, ok := p.Reference()
	if !ok {
		b.Fatal("no reference")
	}
	light := math3.V3(-0.3, 0.8, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		depth := slambench.DepthToRGB(f0.Depth)
		model := slambench.NormalsToRGB(ref.Normals, light)
		status := slambench.TrackStatusToRGB(ref.Vertices, true)
		if _, err := slambench.Mosaic(model, status, model, status); err != nil {
			b.Fatal(err)
		}
		_ = depth
	}
}

// ---- E2 / Figure 2 (left): the DSE evaluations ----

// BenchmarkFig2_EvaluateDefault measures one full DSE evaluation (whole
// sequence on the XU3 model) of the default configuration — the
// expensive black box the active learner minimises calls to.
func BenchmarkFig2_EvaluateDefault(b *testing.B) {
	seq := sequence(b)
	model := device.NewModel(device.OdroidXU3())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.Evaluate(seq, model, kfusion.DefaultConfig())
		if m.Failed {
			b.Fatal("default evaluation failed")
		}
	}
}

// BenchmarkFig2_EvaluateTuned is the same black box under the tuned
// configuration; the ratio to EvaluateDefault is the wall-clock shadow
// of the headline speed-up.
func BenchmarkFig2_EvaluateTuned(b *testing.B) {
	seq := sequence(b)
	model := device.NewModel(device.OdroidXU3())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.Evaluate(seq, model, tunedConfig())
		if m.Failed {
			b.Fatal("tuned evaluation failed")
		}
	}
}

// BenchmarkFig2_SurrogateFit measures fitting the random-forest
// surrogate on a DSE observation set (per active-learning iteration).
func BenchmarkFig2_SurrogateFit(b *testing.B) {
	space := core.DSESpace()
	rng := rand.New(rand.NewSource(1))
	X := make([][]float64, 60)
	y := make([]float64, 60)
	for i := range X {
		pt := space.Sample(rng)
		X[i] = pt
		y[i] = pt[0]*1e-4 + pt[1]*0.01 + rng.Float64()*0.01
	}
	cfg := rf.DefaultForestConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rf.FitForest(X, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_ActiveLearningStep measures one surrogate-guided
// candidate-selection round (prediction + acquisition over the pool),
// with the expensive evaluator stubbed by the analytic surface.
func BenchmarkFig2_ActiveLearningStep(b *testing.B) {
	space := core.DSESpace()
	iVR := space.Index("volume_resolution")
	iCSR := space.Index("compute_size_ratio")
	eval := func(pt hypermapper.Point) hypermapper.Metrics {
		vr, csr := pt[iVR], pt[iCSR]
		return hypermapper.Metrics{
			Runtime: 1e-9*vr*vr*vr + 0.02/csr,
			MaxATE:  0.01 + 4/vr + 0.01*csr,
			Power:   1 + 1e-8*vr*vr*vr,
		}
	}
	cfg := hypermapper.DefaultOptimizerConfig()
	cfg.RandomSamples = 15
	cfg.ActiveIterations = 1
	cfg.BatchPerIteration = 5
	cfg.CandidatePool = 1000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := hypermapper.Optimize(space, eval, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_FlatPredictBatch measures the flat surrogate inference
// engine in isolation: one fitted forest compiled to rf.FlatForest
// scoring a full candidate pool (1000 rows) through PredictBatch into
// reused buffers — the per-iteration inner loop of the active learner.
func BenchmarkFig2_FlatPredictBatch(b *testing.B) {
	space := core.DSESpace()
	rng := rand.New(rand.NewSource(2))
	X := make([][]float64, 60)
	y := make([]float64, 60)
	for i := range X {
		pt := space.Sample(rng)
		X[i] = pt
		y[i] = pt[0]*1e-4 + pt[1]*0.01 + rng.Float64()*0.01
	}
	fcfg := rf.DefaultForestConfig()
	fcfg.Tree.MTry = len(space.Params)
	forest, err := rf.FitForest(X, y, fcfg)
	if err != nil {
		b.Fatal(err)
	}
	flat := forest.Flatten()
	const pool = 1000
	d := flat.Dims()
	Xm := make([]float64, pool*d)
	for i := 0; i < pool; i++ {
		space.SampleInto(Xm[i*d:(i+1)*d], rng)
	}
	mean := make([]float64, pool)
	std := make([]float64, pool)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flat.PredictBatch(Xm, mean, std, 0)
	}
}

// BenchmarkFig2_PointerPredictPool is the contrast: the same pool
// scored through the pointer-tree Forest one candidate at a time (the
// shape of the old candidate scorer). Note the pointer walk also got
// faster this PR — the fitting arena lays its nodes out contiguously —
// so on a single core the two are near parity; the flat engine's edge
// is the allocation-free batched API and PredictBatch's multicore
// scaling, which the per-candidate pointer path cannot offer.
func BenchmarkFig2_PointerPredictPool(b *testing.B) {
	space := core.DSESpace()
	rng := rand.New(rand.NewSource(2))
	X := make([][]float64, 60)
	y := make([]float64, 60)
	for i := range X {
		pt := space.Sample(rng)
		X[i] = pt
		y[i] = pt[0]*1e-4 + pt[1]*0.01 + rng.Float64()*0.01
	}
	fcfg := rf.DefaultForestConfig()
	fcfg.Tree.MTry = len(space.Params)
	forest, err := rf.FitForest(X, y, fcfg)
	if err != nil {
		b.Fatal(err)
	}
	const pool = 1000
	pts := make([]hypermapper.Point, pool)
	for i := range pts {
		pts[i] = space.Sample(rng)
	}
	mean := make([]float64, pool)
	std := make([]float64, pool)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, pt := range pts {
			mean[j], std[j] = forest.PredictWithStd(pt)
		}
	}
}

// ---- E3 / Figure 2 (right): knowledge extraction ----

// BenchmarkFig2_KnowledgeExtraction measures fitting the knowledge
// decision tree and extracting its rules from 200 DSE observations.
func BenchmarkFig2_KnowledgeExtraction(b *testing.B) {
	space := core.DSESpace()
	rng := rand.New(rand.NewSource(3))
	var obs []hypermapper.Observation
	for i := 0; i < 200; i++ {
		pt := space.Sample(rng)
		vr := pt[space.Index("volume_resolution")]
		csr := pt[space.Index("compute_size_ratio")]
		obs = append(obs, hypermapper.Observation{X: pt, M: hypermapper.Metrics{
			Runtime: 1e-9*vr*vr*vr + 0.02/csr,
			MaxATE:  0.01 + 4/vr + 0.01*csr,
			Power:   1 + 1e-8*vr*vr*vr,
		}})
	}
	label, names := hypermapper.PaperClasses(0.05, 30, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hypermapper.Knowledge(space, obs, label, names, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E4 / headline: default vs tuned on the XU3 model ----

// benchHeadline executes recorded per-frame costs on the XU3 model and
// reports simulated FPS and watts as benchmark metrics.
func benchHeadline(b *testing.B, cfg kfusion.Config) {
	sum := runOnce(b, cfg, nil)
	model := device.NewModel(device.OdroidXU3())
	var lastFPS, lastW float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var lat, energy float64
		for _, r := range sum.Records {
			st := model.ExecuteFrame(r.Cost, 1.0/30)
			lat += st.Latency
			energy += st.Energy
		}
		n := float64(len(sum.Records))
		lastFPS = n / lat
		// Average power over the run window: the sensor period when the
		// device keeps up, the busy time when it does not.
		window := n / 30
		if lat > window {
			window = lat
		}
		lastW = energy / window
	}
	b.ReportMetric(lastFPS, "simFPS")
	b.ReportMetric(lastW, "simW")
	b.ReportMetric(sum.ATE.Max*1000, "maxATE_mm")
}

// BenchmarkHeadline_DefaultXU3 reports the stock configuration's
// simulated FPS/W on the XU3 (the "state of the art" baseline).
func BenchmarkHeadline_DefaultXU3(b *testing.B) { benchHeadline(b, kfusion.DefaultConfig()) }

// BenchmarkHeadline_TunedXU3 reports the tuned configuration's simulated
// FPS/W; the ratio to DefaultXU3 is the paper's 4.8×/2.8× claim.
func BenchmarkHeadline_TunedXU3(b *testing.B) { benchHeadline(b, tunedConfig()) }

// ---- E5 / Figure 3: the 83-phone sweep ----

// BenchmarkFig3_PhoneSweep measures converting one configuration's
// recorded frame costs into per-device latencies across the whole
// catalogue (the sweep after the two pipeline runs).
func BenchmarkFig3_PhoneSweep(b *testing.B) {
	sumDef := runOnce(b, kfusion.DefaultConfig(), nil)
	sumTuned := runOnce(b, tunedConfig(), nil)
	cat := phones.Catalogue(42)
	var mean float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mean = 0
		for _, p := range cat {
			m := device.NewModel(p)
			var dLat, tLat float64
			for _, r := range sumDef.Records {
				dLat += m.ExecuteFrame(r.Cost, 1.0/30).Latency
			}
			for _, r := range sumTuned.Records {
				tLat += m.ExecuteFrame(r.Cost, 1.0/30).Latency
			}
			mean += dLat / tLat
		}
		mean /= float64(len(cat))
	}
	b.ReportMetric(mean, "meanSpeedup")
}

// ---- E6: the odometry baseline ----

// BenchmarkBaseline_Odometry measures one frame of the frame-to-frame
// ICP baseline (the cross-algorithm comparison of the methodology).
func BenchmarkBaseline_Odometry(b *testing.B) {
	seq := sequence(b)
	f0, _ := seq.Frame(0)
	cfg := odometry.DefaultConfig()
	tr, err := odometry.New(cfg, seq.Intrinsics(), f0.GroundTruth)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _ := seq.Frame(i % seq.Len())
		if _, err := tr.ProcessFrame(f.Depth); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations: the per-kernel costs behind the trade-off ----

func benchIntegrate(b *testing.B, res int) {
	seq := sequence(b)
	f0, _ := seq.Frame(0)
	in := seq.Intrinsics()
	v := tsdf.New(res, 5.6, math3.V3(-2.8, -1.5, -2.8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Integrate(f0.Depth, f0.GroundTruth, in, 0.1, 100)
	}
}

// BenchmarkKernel_Integrate64 measures TSDF integration at 64³ — the
// fast end of the paper's dominant parameter.
func BenchmarkKernel_Integrate64(b *testing.B) { benchIntegrate(b, 64) }

// BenchmarkKernel_Integrate128 measures TSDF integration at 128³.
func BenchmarkKernel_Integrate128(b *testing.B) { benchIntegrate(b, 128) }

// BenchmarkKernel_Integrate256 measures TSDF integration at 256³ — the
// accurate, slow end (the stock configuration).
func BenchmarkKernel_Integrate256(b *testing.B) { benchIntegrate(b, 256) }

// BenchmarkKernel_Raycast measures surface extraction from a populated
// 128³ volume at compute resolution.
func BenchmarkKernel_Raycast(b *testing.B) {
	seq := sequence(b)
	f0, _ := seq.Frame(0)
	in := seq.Intrinsics()
	v := tsdf.New(128, 5.6, math3.V3(-2.8, -1.5, -2.8))
	v.Integrate(f0.Depth, f0.GroundTruth, in, 0.1, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := v.Raycast(f0.GroundTruth, in, 0.1, 0.1, 10)
		if res.Vertices.ValidCount() == 0 {
			b.Fatal("raycast found nothing")
		}
		res.Release()
	}
}

// BenchmarkKernel_BilateralFilter measures the depth denoising kernel
// with a freshly allocated destination per frame (the pre-pool usage).
func BenchmarkKernel_BilateralFilter(b *testing.B) {
	seq := sequence(b)
	f0, _ := seq.Frame(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imgproc.BilateralFilter(f0.Depth, 2, 4, 0.1)
	}
}

// BenchmarkKernel_BilateralFilterPooled measures the kernel the way the
// pipeline now runs it: destination drawn from a BufferPool, spatial
// kernel cached — the steady state allocates (nearly) nothing.
func BenchmarkKernel_BilateralFilterPooled(b *testing.B) {
	seq := sequence(b)
	f0, _ := seq.Frame(0)
	var pool imgproc.BufferPool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := pool.Depth(f0.Depth.Width, f0.Depth.Height)
		imgproc.BilateralFilterInto(dst, f0.Depth, 2, 4, 0.1)
		pool.PutDepth(dst)
	}
}

// BenchmarkKernel_ICP measures one multi-iteration ICP solve at compute
// resolution against a raycast reference.
func BenchmarkKernel_ICP(b *testing.B) {
	seq := sequence(b)
	f0, _ := seq.Frame(0)
	cfg := tunedConfig()
	p, err := kfusion.New(cfg, seq.Intrinsics(), f0.GroundTruth)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.ProcessFrame(f0.Depth); err != nil {
		b.Fatal(err)
	}
	f1, _ := seq.Frame(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ProcessFrame(f1.Depth); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernel_SyntheticRender measures rendering one synthetic depth
// frame (the dataset substrate).
func BenchmarkKernel_SyntheticRender(b *testing.B) {
	in := camera.Kinect640().ScaledTo(160, 120)
	_ = in
	seq := sequence(b)
	_ = seq
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := dataset.LivingRoomKT(0, dataset.PresetOptions{
			Width: 160, Height: 120, Frames: 1, FPS: 30, Noisy: false, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = s
	}
}
