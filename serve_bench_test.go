// Benchmarks for the campaign service's steady-state request path.
// They join the Kernel_ family gated by scripts/bench-compare.sh: the
// served status/report hot path must stay allocation-free per request,
// so its allocs/op baseline is zero and any new allocation fails the
// gate outright.
package slamgo_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"slamgo/internal/serve"
)

// nullResponseWriter discards the response body so the benchmark
// measures only the server's own work, not recorder bookkeeping.
type nullResponseWriter struct {
	header http.Header
}

func (w *nullResponseWriter) Header() http.Header         { return w.header }
func (w *nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullResponseWriter) WriteHeader(int)             {}

// serveFixture runs one real (tiny, quick-scale) campaign through the
// service manager once per test process, then hands every benchmark
// the same completed job. The campaign itself takes a few seconds; the
// benchmarks measure only the request path over its cached artifacts.
var serveFixture struct {
	once   sync.Once
	dir    string
	server *serve.Server
	jobID  string
	err    error
}

func TestMain(m *testing.M) {
	code := m.Run()
	if serveFixture.dir != "" {
		os.RemoveAll(serveFixture.dir)
	}
	os.Exit(code)
}

func serveBenchServer(b *testing.B) (*serve.Server, string) {
	b.Helper()
	serveFixture.once.Do(func() {
		dir, err := os.MkdirTemp("", "serve-bench-")
		if err != nil {
			serveFixture.err = err
			return
		}
		serveFixture.dir = dir
		m, err := serve.NewManager(dir, 2, nil)
		if err != nil {
			serveFixture.err = err
			return
		}
		spec := serve.CampaignSpec{
			Quick:             true,
			Scenarios:         []string{"lr_kt0"},
			Devices:           []string{"odroid-xu3"},
			RandomSamples:     4,
			ActiveIterations:  1,
			BatchPerIteration: 2,
		}
		job, _, err := m.Submit(spec)
		if err != nil {
			serveFixture.err = err
			return
		}
		select {
		case <-job.Done():
		case <-time.After(5 * time.Minute):
			serveFixture.err = fmt.Errorf("fixture campaign did not finish")
			return
		}
		if job.State() != serve.StateDone {
			serveFixture.err = fmt.Errorf("fixture campaign ended %s", job.State())
			return
		}
		serveFixture.server = serve.NewServer(m, nil)
		serveFixture.jobID = job.ID()
	})
	if serveFixture.err != nil {
		b.Fatalf("serve fixture: %v", serveFixture.err)
	}
	return serveFixture.server, serveFixture.jobID
}

func benchServeRequest(b *testing.B, path string) {
	s, id := serveBenchServer(b)
	req := httptest.NewRequest(http.MethodGet, fmt.Sprintf(path, id), nil)
	w := &nullResponseWriter{header: make(http.Header)}
	// One warm-up request so lazily rendered bytes are cached before
	// the measured iterations.
	s.ServeHTTP(w, req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ServeHTTP(w, req)
	}
}

// BenchmarkKernel_ServeStatus measures GET /campaigns/{id} against a
// completed job — the poll loop every client sits in. Steady state
// must be zero allocs/op.
func BenchmarkKernel_ServeStatus(b *testing.B) {
	benchServeRequest(b, "/campaigns/%s")
}

// BenchmarkKernel_ServeReport measures GET /campaigns/{id}/report
// (JSON form) against a completed job. The report bytes are rendered
// once at completion; serving them must be zero allocs/op.
func BenchmarkKernel_ServeReport(b *testing.B) {
	benchServeRequest(b, "/campaigns/%s/report?format=json")
}
