// Package slamgo is a from-scratch Go reproduction of "Algorithmic
// Performance-Accuracy Trade-off in 3D Vision Applications" (Bodin,
// Nardi, Wagstaff, Kelly, O'Boyle — ISPASS 2018): the SLAMBench
// benchmarking methodology around a complete KinectFusion dense-SLAM
// pipeline, the HyperMapper machine-learning design-space exploration of
// its algorithmic parameters, and the mobile-device performance study.
//
// The implementation lives under internal/; see README.md for the layout,
// DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for measured-vs-paper results. The benchmarks in
// bench_test.go regenerate every figure-level experiment.
package slamgo
