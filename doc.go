// Package slamgo is a from-scratch Go reproduction of "Algorithmic
// Performance-Accuracy Trade-off in 3D Vision Applications" (Bodin,
// Nardi, Wagstaff, Kelly, O'Boyle — ISPASS 2018): the SLAMBench
// benchmarking methodology around a complete KinectFusion dense-SLAM
// pipeline, the HyperMapper machine-learning design-space exploration of
// its algorithmic parameters, and the mobile-device performance study.
//
// The implementation lives under internal/; see README.md for the layout,
// DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for measured-vs-paper results. The benchmarks in
// bench_test.go regenerate every figure-level experiment.
//
// # Concurrency model
//
// All parallelism flows through internal/parallel, a bounded worker pool
// over contiguous index chunks with two invariants: chunk boundaries
// depend only on the problem size (never on the worker count), and
// per-chunk partial results merge serially in ascending chunk order.
// Workers race only over which chunk they pull next, so every
// floating-point reduction — ICP normal equations, raycast step counts,
// surrogate predictions — is bit-identical whether the host has 1 core
// or 64.
//
// The DSE engine (internal/hypermapper) evaluates its Latin-hypercube
// seeding phase and each active-learning batch concurrently through a
// ParallelEvaluator, scores the candidate pool in parallel chunks, and
// fits the random-forest surrogate's trees concurrently (each tree's
// RNG is seeded by a serial pre-draw). Batches are selected first on
// the surrogate's optimistic estimates, then evaluated in parallel and
// appended in selection order. The result: a seeded Optimize run yields
// a byte-identical Result — every observation and the final Pareto
// front — for any setting of the Workers knob (OptimizerConfig.Workers
// and rf.ForestConfig.Workers; 0 means GOMAXPROCS, 1 is fully serial;
// cmd/hypermapper and cmd/experiments expose it as -workers).
//
// The frame kernels are allocation-free in the steady state: an
// imgproc.BufferPool (sync.Pool-backed, one pool per map size) recycles
// every per-frame depth/vertex/normal map, the bilateral filter's
// spatial Gaussian is precomputed once per (radius, sigma), and
// kfusion.Pipeline ping-pongs its raycast reference between two pooled
// map pairs. The depth/vertex/normal Into-variants of the kernels
// (BilateralFilterInto, DepthToVertexMapInto, ...) overwrite every
// destination pixel, so recycled buffers behave exactly like fresh
// allocations; RaycastInto is the exception — it writes only hit
// pixels and requires all-invalid maps, which BufferPool.Vertex/Normal
// provide by clearing masks on reuse.
package slamgo
