// Package slamgo is a from-scratch Go reproduction of "Algorithmic
// Performance-Accuracy Trade-off in 3D Vision Applications" (Bodin,
// Nardi, Wagstaff, Kelly, O'Boyle — ISPASS 2018): the SLAMBench
// benchmarking methodology around a complete KinectFusion dense-SLAM
// pipeline, the HyperMapper machine-learning design-space exploration of
// its algorithmic parameters, and the mobile-device performance study.
//
// The implementation lives under internal/; see README.md for the layout,
// DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for measured-vs-paper results. The benchmarks in
// bench_test.go regenerate every figure-level experiment.
//
// # Concurrency model
//
// All parallelism flows through internal/parallel, a bounded worker pool
// over contiguous index chunks with two invariants: chunk boundaries
// depend only on the problem size (never on the worker count), and
// per-chunk partial results merge serially in ascending chunk order.
// Workers race only over which chunk they pull next, so every
// floating-point reduction — ICP normal equations, raycast step counts,
// surrogate predictions — is bit-identical whether the host has 1 core
// or 64.
//
// The DSE engine (internal/hypermapper) evaluates its Latin-hypercube
// seeding phase and each active-learning batch concurrently through a
// ParallelEvaluator, scores the candidate pool in parallel chunks, and
// fits the random-forest surrogate's trees concurrently (each tree's
// RNG is seeded by a serial pre-draw). Batches are selected first on
// the surrogate's optimistic estimates, then evaluated in parallel and
// appended in selection order. The result: a seeded Optimize run yields
// a byte-identical Result — every observation and the final Pareto
// front — for any setting of the Workers knob (OptimizerConfig.Workers
// and rf.ForestConfig.Workers; 0 means GOMAXPROCS, 1 is fully serial;
// cmd/hypermapper and cmd/experiments expose it as -workers).
//
// # Surrogate inference and the evaluation ladder
//
// Surrogate inference runs on rf.FlatForest, a structure-of-arrays
// compilation of the fitted pointer forest: contiguous
// feature/threshold/left/right/value slices (plus a packed 16-byte
// walk mirror with leaf values folded in and preorder-implicit left
// children), predicted through allocation-free PredictInto /
// PredictWithStdInto and a PredictBatch that fans rows across
// internal/parallel with the usual fixed-chunk determinism. The
// optimizer samples each round's candidate pool straight into a reused
// row-major matrix, deduplicates against the evaluated set with binary
// point keys (hypermapper.AppendKey; map probes allocate nothing), and
// scores the whole pool with one batched prediction per objective — an
// active-learning round allocates a few buffers instead of a hundred
// thousand tree-walk temporaries, and tree fitting itself grows nodes
// from a preallocated arena with in-place index partitions.
//
// Repeated measurements are cut by two opt-in layers. A
// hypermapper.MemoEvaluator content-addresses Metrics by the exact
// binary encoding of the point, so any configuration re-sampled across
// phases (active batches, random-only baselines, headline re-runs) is
// simulated once. A hypermapper.MultiFidelity batch evaluator —
// plugged into OptimizerConfig.BatchEval, built by
// core.NewMultiFidelityEvaluator over slambench.Subsample — screens
// every batch candidate on a frame-subsampled sequence and promotes
// only the top-ranked fraction to full-fidelity runs; both rungs are
// memoized and the promotion ranking breaks ties by batch position, so
// the ladder keeps the workers-independence guarantee
// (cmd/hypermapper and cmd/experiments expose it as -mf-stride and
// -mf-promote; stride ≤ 1 leaves every run at full fidelity).
// Budget accounting is denominated in full-fidelity simulations: the
// same-budget random baseline of RunFig2 receives exactly as many full
// runs as the ladder promoted (MultiFidelity.Stats), never one per
// observation — low-fidelity screening runs are cheaper by the stride
// and must not inflate the baseline's simulation budget. The
// feasibility constraint (hypermapper.AccuracyLimit) is fidelity-aware
// for the same reason: a subsampled measurement's optimistic ATE never
// certifies a configuration. MemoEvaluator coalesces concurrent misses
// on the same key (per-key singleflight), so two workers racing on one
// configuration run a single pipeline simulation and Stats counts true
// misses only.
//
// # Campaign engine: staged, resumable, cell-promoted
//
// internal/campaign replays the whole methodology across scenarios and
// devices at once — the paper tunes per scene and per device, and the
// campaign engine makes that a single orchestrated run. A scenario
// registry enumerates scene × trajectory × resolution × noise cells
// (the living-room kt0–kt3 and office kt0–kt1 analogues, via
// core.Scale) crossed with device targets (the ODROID-XU3, the desktop
// comparator, or named picks from the phone catalogue via
// phones.ByName), in fixed scenario-major order.
//
// A campaign runs as a staged job model — Plan → Explore → Promote →
// CrossMeasure → Aggregate — where every stage consumes and emits
// serialisable per-cell artifacts. Explore runs a constrained
// Fig2-style exploration per cell (sharded over internal/parallel,
// memoized, with the intra-cell multi-fidelity ladder when
// -mf-stride is set); CrossMeasure re-measures every cell's best
// feasible and leading front members in every other cell at full
// fidelity; Aggregate picks the cross-scenario robust configuration
// with hypermapper.RobustBest — feasible in all cells first, then
// minimum worst-case per-cell rank, then rank sum — which quantifies
// the paper's "one configuration does not fit all scenes" point.
//
// With -campaign-checkpoint the artifacts persist: one versioned JSON
// file per cell per stage (campaign.Store), named by the stage kind,
// the grid index and a content hash of the cell spec + seed + the
// options that determine the artifact's bytes. A killed campaign
// rerun with -campaign-resume loads completed cells instead of
// re-simulating them (a changed option hashes differently and simply
// misses the stale artifact; a format change bumps the store version
// and orphans everything). Worker count is excluded from the hash —
// results are bit-identical for any Workers value — so a campaign
// interrupted under -workers 1 resumes under -workers 8, and an
// interrupted-then-resumed campaign renders a byte-identical report to
// an uninterrupted one (floats round-trip JSON exactly; resumption
// provenance goes to stderr via slambench.WriteCampaignProvenance, not
// into the report). `make campaign-resume-smoke` enforces exactly that
// in CI: run, stop after Explore, resume, diff against an uninterrupted
// run.
//
// The checkpoint store doubles as a coordination substrate for
// multi-process campaigns. With -campaign-worker-id, N processes (or
// machines over a shared filesystem) pointing at one
// -campaign-checkpoint directory execute a single campaign's grid
// cooperatively: a worker claims a cell by atomically creating the
// artifact's .lease sibling (O_CREATE|O_EXCL, carrying its id and a
// heartbeat it renews while computing), peers waiting on a claimed
// cell poll with deterministic backoff until the artifact appears, and
// a lease whose heartbeat exceeds -campaign-lease-ttl is reclaimed —
// so any worker can be SIGKILLed at any instant without losing the
// campaign. Leases are a work-distribution optimisation, never a
// correctness mechanism: artifact names are content hashes, every
// writer of a name produces identical bytes, and writes are atomic
// (temp file + rename), so a takeover racing a slow-but-alive holder
// just computes the cell twice and the last rename wins. Store I/O is
// wrapped in bounded retry-with-backoff (transient ENOSPC/EIO cost
// milliseconds, not a crash), a Load distinguishes a miss — absent,
// torn or corrupt artifact, safe to recompute — from a real I/O fault
// that must surface, and a cell whose exploration panics is
// quarantined into a persisted failed artifact (a failed row in the
// report; the campaign aggregates the survivors) instead of killing
// the run. `make campaign-distributed-smoke` enforces the end-to-end
// claim in CI: two worker processes share a store, one is SIGKILLed
// mid-run, and the survivor's report must be byte-identical to an
// uninterrupted single-process run.
//
// # Rendered-sequence cache
//
// Rendering a synthetic input sequence dominates a cell's startup, and
// a campaign grid re-renders the same sequence once per cell — in
// worker mode once per cell per process. internal/seqcache removes
// that: a content-addressed, crash-safe artifact store shared by every
// cell of a campaign and by cooperating worker processes. The key is
// core.Scale.CacheKey, a hash over every input that determines the
// rendered frames (scene, trajectory, resolution, frame count, noise
// flag, seed, a format version) — two scales render identical
// sequences exactly when their keys collide, so "look up by key" is
// the whole consistency protocol. Artifacts are a versioned binary
// encoding of the frames (raw float32 depth, raw float64 poses —
// nothing quantised, so a cached campaign's report is byte-identical
// to an uncached one) with an embedded sha256 checksum, written
// atomically (temp file + rename) and verified on every load.
//
// Reads degrade down a strict ladder, and no rung is ever fatal to the
// campaign: an in-process memory hit, else a checksum-verified disk
// hit, else render-and-publish under the same lease protocol the cell
// store uses (one renderer per key per store; peers poll with bounded
// backoff, a dead renderer's lease is reclaimed after its TTL, a
// wedged one is abandoned after a bounded number of polls), else —
// when the cache directory is unusable, the disk is full, or a fault
// persists past the bounded retries — plain inline rendering, exactly
// what an uncached run does. Every data defect (absent, truncated,
// bit-flipped, version-mismatched or misfiled artifact) is a silent
// miss that the next render repairs in place; only real I/O faults
// ride the retry ladder, and exhausting it costs a log line and a
// degradation counter, never the run. Cache provenance (renders, disk
// hits, memory hits, degradations, evictions, and each cell's
// sequence source) rides the stderr provenance table next to the
// resume columns — the deterministic report surface never sees it.
//
// cmd/experiments exposes the cache as -campaign-seq-cache: it
// defaults to <checkpoint>/seqcache whenever -campaign-checkpoint is
// set (workers sharing a checkpoint automatically share renders),
// "off" disables it, and without a directory the cache still
// deduplicates renders in-process (cells sharing a scenario share one
// immutable in-memory sequence). -campaign-seq-cache-max-mb bounds the
// store with deterministic lexicographic eviction. Stale temp files
// and orphaned leases are swept on open (sharedfs.SweepDebris, shared
// with the checkpoint store). `make campaign-cache-smoke` enforces the
// end-to-end claim in CI: two processes share checkpoint + cache, one
// is SIGKILLed and one artifact is corrupted in place mid-run, and the
// survivor's report must still diff clean against an uncached run.
//
// -campaign-cell-stride adds cell-level multi-fidelity, the intra-cell
// ladder replayed at grid granularity: Explore first screens every
// cell on a stride-subsampled sequence, then the Promote stage scores
// each screened Pareto front's hypervolume against a shared reference
// (hypermapper.FrontHypervolumes) and re-explores only the top
// -campaign-cell-promote fraction of cells (index-tie-broken via the
// same hypermapper.PromoteTopFraction the batch ladder uses) at full
// fidelity. Unpromoted cells keep — and are reported at — screening
// fidelity (the report's fid column), while the robust aggregation
// still cross-measures every candidate at full fidelity, so the
// shipped configuration never rests on subsampled metrics.
//
// # Cross-cell transfer learning
//
// The grid's cells are correlated — the same scene on another device,
// the same device on another scene — and with -campaign-transfer the
// campaign exploits that instead of exploring every cell from scratch.
// The mechanism is a pluggable seeding/prior layer on the optimizer
// itself: OptimizerConfig.Seeder generates the random-phase
// configurations (the default LHSSeeder is golden-tested byte-identical
// to the historical inline Latin hypercube, so a nil Seeder is never a
// behaviour change) and OptimizerConfig.Prior blends cross-run
// surrogate knowledge into acquisition scores at a weight that decays
// as local evidence accumulates. Both are strictly advisory: donor
// knowledge informs where the borrower samples, it never enters the
// borrower's observation log, Pareto front or best pick, because
// metrics are workload- and device-specific. Donor observations are
// filtered through hypermapper.FullObservations — failed and
// low-fidelity measurements can never seed a prior, act as warm-start
// donors, or preload a full-fidelity memo.
//
// At campaign scale the Explore stage becomes two waves. Wave 1 runs
// the grid-diagonal anchor cells (scenario i anchors at target i mod
// nTargets) exactly as a transfer-off campaign would — same seeds, same
// artifact names — and publishes each anchor's observation log as a
// content-addressed obslog artifact. Wave 2 runs every remaining cell
// as a borrower warm-started from a fixed donor set (its same-scenario
// anchor first, then its same-device anchors): donor front winners are
// interleaved round-robin into a hypermapper.WarmStartSeeder that
// spends most of a slashed seeding budget (TransferSeeds, default 3)
// on exact donor replays and clamped neighbourhood draws, and the
// pooled donor logs fit a hypermapper.ForestPrior (per-donor min-max
// normalised, so a phone and a desktop contribute comparable
// landscapes). The freed budget funds one extra model-guided
// active-learning round when the total still clears the 20% savings
// bar against a from-scratch cell. The determinism contract survives
// intact: the wave topology, budgets and donor content are pure
// functions of the options and seed, so a transfer campaign's report is
// bit-identical for any -workers value and across cooperating
// processes, borrowers key their artifacts on the donor topology while
// anchors keep their pre-transfer names (a transfer-off campaign
// resumes a transfer-on store's anchors and vice versa), and a
// quarantined anchor degrades its borrowers to exploring from scratch
// rather than poisoning them. `make campaign-transfer-smoke` enforces
// the acceptance bar in CI: the transfer-off report diffs byte-for-byte
// against the pre-transfer golden, and cmd/campaigncmp requires every
// warm-started borrower to spend at least 20% fewer full-fidelity
// simulations at an equal-or-better shared-reference hypervolume.
//
// # Persistent evaluation store
//
// A configuration's simulated metrics are a pure function of the
// configuration, the rendered sequence, the device model and the
// sampling stride — so once any process anywhere has simulated a
// point, no process should ever simulate it again.
// internal/evalstore is that memory: a persistent, content-addressed
// result store that backs hypermapper's in-process memoisation
// (MemoEvaluator consults a ResultTier on memory miss) with a disk
// tier shared across workers, runs and campaigns. The key is a sha256
// over the canonical point encoding (hypermapper.AppendKey — ±0
// normalised, NaN rejected, prefix-free, ordinals by index) plus a
// scope prefix naming everything else that determines the result: the
// scenario's core.Scale.CacheKey, the device profile, the sampling
// stride and a format version. Records are small versioned binaries
// with an embedded sha256, written atomically (temp file + rename)
// into fan-out shards; failed evaluations persist as failed records
// (the evaluator's verdict is deterministic), while low-fidelity
// results are never published and never satisfy a lookup — the stride
// in the key is the fidelity firewall.
//
// Lookups walk the same never-fatal ladder as the sequence cache:
// in-process memo hit, else checksum-verified disk hit, else
// simulate-and-publish under a per-key lease (one simulator per
// configuration per store; peers poll, dead holders are reclaimed
// after the TTL), else plain inline simulation. Data defects are
// silent misses repaired by one re-simulation and re-publish; real
// I/O faults ride the bounded sharedfs retry ladder and then degrade.
// The instrumentation hook sits under the store, so a disk hit is
// never counted — or priced — as a simulation, and the store's
// counters (simulations, disk hits, published, degradations,
// evictions) plus the memo's hit/miss totals ride the stderr
// provenance table; -campaign-cache-stats additionally embeds them,
// with the sequence-cache counters, as a "caches" object in the JSON
// report. The default report surface stays byte-identical between
// cached, uncached and any-worker-count runs.
//
// cmd/experiments exposes the store as -campaign-eval-cache: it
// defaults to <checkpoint>/evalcache whenever -campaign-checkpoint is
// set, "off" disables it, a relative path lives under the checkpoint
// directory, and -campaign-eval-cache-max-mb bounds the store with
// deterministic eviction (bounding a disabled store is a flag error,
// caught before the campaign starts). `make campaign-evalcache-smoke`
// enforces the claim end-to-end in CI: a warm re-run of a cold
// campaign must simulate nothing while rendering a byte-identical
// report, and a record corrupted in place must be silently repaired
// by exactly one re-simulation.
//
// # Campaign service
//
// cmd/dseserve is the long-running face of the engine: an HTTP
// service (internal/serve) that runs campaigns as durable jobs.
// POST /campaigns submits a JSON spec — normalized to the CLI's
// defaults and validated by the same fail-fast Options.Validate path
// before any simulation, then content-addressed (worker count
// excluded) so resubmitting a spec joins the existing job instead of
// starting a twin. GET /campaigns/{id} serves status and per-cell
// progress, GET /campaigns/{id}/events streams stage/cell transitions
// as SSE (an append-only frame log replays history to late
// subscribers, then follows live), GET /campaigns/{id}/report serves
// the table/CSV/JSON renderings of the slambench writers, POST
// /campaigns/{id}/cancel stops a job cooperatively, and
// /debug/pprof/* exposes the standard profiling surface.
//
// The shared-cache topology is the point: a bounded job pool runs
// every campaign through the same staged runner as the CLI, with all
// jobs sharing one evalstore and one seqcache under the server's data
// directory — concurrent tenants never re-simulate or re-render each
// other's work — while each job checkpoints into its own
// campaign.Store using the worker-lease protocol. Campaign progress
// flows out through campaign.Options.OnProgress (stage and cell
// events emitted by the staged runner) and cancellation flows in
// through Options.Cancel: a closed channel stops the campaign at the
// next stage or cell boundary with ErrCanceled, after in-flight cells
// finish and checkpoint.
//
// Drain semantics distinguish a user cancel from a shutdown. Cancel
// writes a marker file into the job directory before closing the
// cancel channel, so the job lands in a permanent canceled state that
// survives restarts (resubmitting the spec revives it). SIGTERM drain
// closes the same channel without a marker: the job ends this process
// as interrupted, and the next boot re-enqueues it to resume from its
// checkpoints — `make serve-smoke` proves the restarted server's
// report is byte-identical to the CLI's with the evalstore counters
// showing no repeated simulation. The steady-state request path
// (status and report reads) is allocation-free: a frozen linear-scan
// router, per-job cached renderings refreshed only on state change,
// pooled response writers and an append-formatted access log, pinned
// at zero allocs/op by the Kernel_Serve* benchmarks under the bench
// gate.
//
// The frame kernels are allocation-free in the steady state: an
// imgproc.BufferPool (sync.Pool-backed, one pool per map size) recycles
// every per-frame depth/vertex/normal map, the bilateral filter's
// spatial Gaussian is precomputed once per (radius, sigma), and
// kfusion.Pipeline ping-pongs its raycast reference between two pooled
// map pairs. The depth/vertex/normal Into-variants of the kernels
// (BilateralFilterInto, DepthToVertexMapInto, ...) overwrite every
// destination pixel, so recycled buffers behave exactly like fresh
// allocations; RaycastInto is the exception — it writes only hit
// pixels and requires all-invalid maps, which BufferPool.Vertex/Normal
// provide by clearing masks on reuse.
package slamgo
