.PHONY: test race bench bench-compare bench-save

test:
	go build ./... && go test ./...

# The concurrency substrate and the parallel DSE engine must stay clean
# under the race detector.
race:
	go test -race ./internal/parallel/... ./internal/hypermapper/...

bench:
	go test -run '^$$' -bench . -benchmem .

# Snapshot the benchmarks, compare against the saved baseline with
# benchstat (when available) and distill the run into
# BENCH_$(BENCH_INDEX).json (the per-PR snapshot series).
BENCH_INDEX ?= 2
bench-compare:
	./scripts/bench-compare.sh $(BENCH_INDEX)

# Promote the latest benchmark snapshot to the baseline future runs are
# compared against.
bench-save:
	@test -f benchmarks/latest.txt || { echo "benchmarks/latest.txt not found; run 'make bench-compare' first"; exit 1; }
	cp benchmarks/latest.txt benchmarks/baseline.txt
