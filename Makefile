.PHONY: test race bench bench-compare bench-save campaign-smoke

test:
	go build ./... && go test ./...

# The concurrency substrate, the parallel DSE engine and the campaign
# orchestrator must stay clean under the race detector.
race:
	go test -race ./internal/parallel/... ./internal/hypermapper/... ./internal/campaign/...

bench:
	go test -run '^$$' -bench . -benchmem .

# Snapshot the benchmarks, compare against the saved baseline with
# benchstat (when available) and distill the run into
# BENCH_$(BENCH_INDEX).json (the per-PR snapshot series).
BENCH_INDEX ?= 3
bench-compare:
	./scripts/bench-compare.sh $(BENCH_INDEX)

# Promote the latest benchmark snapshot to the baseline future runs are
# compared against.
bench-save:
	@test -f benchmarks/latest.txt || { echo "benchmarks/latest.txt not found; run 'make bench-compare' first"; exit 1; }
	cp benchmarks/latest.txt benchmarks/baseline.txt

# Tiny end-to-end campaign: a 4-cell grid (2 scenarios × 2 devices) at
# quick scale, with the multi-fidelity ladder on — the CI smoke test of
# the cross-scene/cross-device engine.
campaign-smoke:
	go run ./cmd/experiments -campaign -quick \
		-campaign-scenes lr_kt0,of_kt0 \
		-campaign-devices odroid-xu3,pixel-adreno530 \
		-random 6 -active 1 -batch 2 -mf-stride 2 -mf-promote 0.5
