.PHONY: test race bench bench-compare bench-save campaign-smoke campaign-resume-smoke campaign-distributed-smoke campaign-cache-smoke campaign-transfer-smoke campaign-evalcache-smoke serve-smoke

test:
	go build ./... && go test ./...

# The concurrency substrate, the parallel DSE engine and the campaign
# orchestrator must stay clean under the race detector. The campaign
# package replays whole (small) campaigns many times — determinism
# across workers plus the checkpoint/resume suite — so it needs more
# than the default 10-minute package timeout under the race detector.
race:
	go test -race -timeout 30m ./internal/parallel/... ./internal/hypermapper/... ./internal/campaign/... ./internal/seqcache/... ./internal/sharedfs/... ./internal/evalstore/... ./internal/serve/...

bench:
	go test -run '^$$' -bench . -benchmem .

# Snapshot the benchmarks, compare against the saved baseline with
# benchstat (when available) and distill the run into
# BENCH_$(BENCH_INDEX).json (the per-PR snapshot series).
BENCH_INDEX ?= 8
bench-compare:
	./scripts/bench-compare.sh $(BENCH_INDEX)

# Promote the latest benchmark snapshot to the baseline future runs are
# compared against.
bench-save:
	@test -f benchmarks/latest.txt || { echo "benchmarks/latest.txt not found; run 'make bench-compare' first"; exit 1; }
	cp benchmarks/latest.txt benchmarks/baseline.txt

# Tiny end-to-end campaign: a 4-cell grid (2 scenarios × 2 devices) at
# quick scale, with the multi-fidelity ladder on — the CI smoke test of
# the cross-scene/cross-device engine.
campaign-smoke:
	go run ./cmd/experiments -campaign -quick \
		-campaign-scenes lr_kt0,of_kt0 \
		-campaign-devices odroid-xu3,pixel-adreno530 \
		-random 6 -active 1 -batch 2 -mf-stride 2 -mf-promote 0.5

# Checkpoint/resume smoke test of the staged campaign engine: run the
# same cell-ladder campaign three ways — stopped after the Explore
# stage, resumed from its checkpoints, and uninterrupted — and require
# the resumed report to be byte-identical to the uninterrupted one.
RESUME_SMOKE_DIR := .campaign-resume-smoke
RESUME_SMOKE_FLAGS := -campaign -quick \
	-campaign-scenes lr_kt0,of_kt0 \
	-campaign-devices odroid-xu3,pixel-adreno530 \
	-random 6 -active 1 -batch 2 \
	-campaign-cell-stride 2 -campaign-cell-promote 0.5
campaign-resume-smoke:
	rm -rf $(RESUME_SMOKE_DIR)
	mkdir -p $(RESUME_SMOKE_DIR)
	go run ./cmd/experiments $(RESUME_SMOKE_FLAGS) \
		-campaign-checkpoint $(RESUME_SMOKE_DIR)/store -campaign-stop-after explore
	go run ./cmd/experiments $(RESUME_SMOKE_FLAGS) \
		-campaign-checkpoint $(RESUME_SMOKE_DIR)/store -campaign-resume \
		-o $(RESUME_SMOKE_DIR)/resumed.txt
	go run ./cmd/experiments $(RESUME_SMOKE_FLAGS) \
		-o $(RESUME_SMOKE_DIR)/fresh.txt
	diff $(RESUME_SMOKE_DIR)/fresh.txt $(RESUME_SMOKE_DIR)/resumed.txt
	rm -rf $(RESUME_SMOKE_DIR)
	@echo "campaign-resume-smoke: resumed report byte-identical to uninterrupted run"

# Crash-safety smoke test of the worker-lease protocol: two OS
# processes cooperate on one campaign through a shared checkpoint
# directory, one is SIGKILLed mid-run, and the survivor's report must be
# byte-identical to an uninterrupted single-process run.
campaign-distributed-smoke:
	./scripts/distributed-smoke.sh

# Transfer-learning smoke test: the same 4×2 campaign grid with and
# without -campaign-transfer; the transfer-off table must be
# byte-identical to the pre-transfer golden, and campaigncmp enforces
# ≥20% borrower savings at equal-or-better shared-reference
# hypervolume.
campaign-transfer-smoke:
	./scripts/transfer-smoke.sh

# Fault-tolerance smoke test of the rendered-sequence cache: two OS
# processes share a checkpoint AND the sequence cache, one is SIGKILLed
# and a cache artifact is corrupted in place mid-run; the survivor's
# report must be byte-identical to an uncached run, with no leaked temp
# files in the cache directory.
campaign-cache-smoke:
	./scripts/cache-smoke.sh

# Smoke test of the persistent evaluation store: a cold campaign run
# fills the store, a warm re-run must simulate nothing while rendering
# a byte-identical report, and a record corrupted in place must be
# silently repaired by exactly one re-simulation.
campaign-evalcache-smoke:
	./scripts/evalcache-smoke.sh

# End-to-end smoke test of the campaign service: a campaign submitted
# to cmd/dseserve over HTTP must render a report byte-identical to
# cmd/experiments, and a server SIGTERMed mid-campaign must resume the
# job after restart with zero repeated simulation (evalstore counters
# prove it).
serve-smoke:
	./scripts/serve-smoke.sh
