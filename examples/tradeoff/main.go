// Tradeoff: sweep the two dominant algorithmic parameters of the paper —
// TSDF volume resolution and compute-size ratio — and print the
// performance/accuracy/power frontier each induces on the simulated
// ODROID-XU3. This is the single-parameter view of the trade-off that
// Figure 2 explores jointly with machine learning.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"slamgo/internal/core"
	"slamgo/internal/device"
	"slamgo/internal/kfusion"
)

func main() {
	scale := core.Scale{Width: 160, Height: 120, Frames: 24, Noisy: true, Seed: 42}
	seq, err := scale.Sequence()
	if err != nil {
		log.Fatal(err)
	}
	model := device.NewModel(device.OdroidXU3())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)

	fmt.Println("volume resolution sweep (csr=2, mu=0.1):")
	fmt.Fprintln(tw, "  volume\tsim FPS\tmax ATE (m)\tpower (W)\treal-time")
	for _, vr := range []int{64, 96, 128, 192, 256} {
		cfg := kfusion.DefaultConfig()
		cfg.VolumeResolution = vr
		m := core.Evaluate(seq, model, cfg)
		fmt.Fprintf(tw, "  %d³\t%.1f\t%.4f\t%.2f\t%v\n",
			vr, fps(m.Runtime), m.MaxATE, m.Power, fps(m.Runtime) >= 30)
	}
	tw.Flush()

	fmt.Println("\ncompute-size-ratio sweep (volume=128³):")
	fmt.Fprintln(tw, "  ratio\tsim FPS\tmax ATE (m)\tpower (W)\treal-time")
	for _, csr := range []int{1, 2, 4} {
		cfg := kfusion.DefaultConfig()
		cfg.VolumeResolution = 128
		cfg.ComputeSizeRatio = csr
		m := core.Evaluate(seq, model, cfg)
		status := fmt.Sprintf("%v", fps(m.Runtime) >= 30)
		if m.Failed {
			status = "TRACKING LOST"
		}
		fmt.Fprintf(tw, "  %d\t%.1f\t%.4f\t%.2f\t%s\n",
			csr, fps(m.Runtime), m.MaxATE, m.Power, status)
	}
	tw.Flush()

	fmt.Println("\nreading: larger volumes buy accuracy with cubically more work;")
	fmt.Println("coarser input buys speed until tracking cannot hold on.")
}

func fps(runtime float64) float64 {
	if runtime <= 0 {
		return 0
	}
	return 1 / runtime
}
