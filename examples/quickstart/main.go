// Quickstart: render a short synthetic living-room sequence, run the
// KinectFusion pipeline over it, and print the three metric families the
// paper's methodology couples together — speed, accuracy and (simulated)
// power.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"slamgo/internal/dataset"
	"slamgo/internal/device"
	"slamgo/internal/kfusion"
	"slamgo/internal/slambench"
)

func main() {
	// 1. A synthetic RGB-D sequence with exact ground truth (the
	//    ICL-NUIM living-room analogue). 160×120 keeps this instant.
	seq, err := dataset.LivingRoomKT(0, dataset.PresetOptions{
		Width: 160, Height: 120, Frames: 30, FPS: 30, Noisy: true, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The KinectFusion system under its stock configuration, with a
	//    modest volume so the example runs in a couple of seconds.
	cfg := kfusion.DefaultConfig()
	cfg.VolumeResolution = 128
	sys := slambench.NewKFusion(cfg, seq)

	// 3. Benchmark it on the simulated ODROID-XU3 (the paper's board).
	runner := &slambench.Runner{Model: device.NewModel(device.OdroidXU3())}
	sum, err := runner.Run(sys, seq)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(slambench.FormatSummary(sum))
	fmt.Println("\nkernel breakdown:")
	if err := slambench.KernelBreakdown(os.Stdout, sum); err != nil {
		log.Fatal(err)
	}
}
