// DSE: a compact end-to-end HyperMapper run — random sampling, active
// learning with random-forest surrogates under the paper's 5 cm accuracy
// limit, Pareto front, and the extracted knowledge rules (Figure 2).
//
//	go run ./examples/dse
package main

import (
	"fmt"
	"log"

	"slamgo/internal/core"
)

func main() {
	opts := core.DefaultFig2Options()
	opts.Scale = core.Scale{Width: 160, Height: 120, Frames: 24, Noisy: true, Seed: 42}
	opts.RandomSamples = 12
	opts.ActiveIterations = 3
	opts.BatchPerIteration = 3
	opts.AccuracyLimit = 0.06
	opts.Log = func(s string) { fmt.Println("  [dse]", s) }

	fmt.Println("exploring the KinectFusion parameter space on the XU3 model…")
	fig2, err := core.RunFig2(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndefault configuration: %.1f FPS, maxATE %.4f m, %.2f W\n",
		fps(fig2.DefaultMetrics.Runtime), fig2.DefaultMetrics.MaxATE, fig2.DefaultMetrics.Power)
	if fig2.HasBestFeasible {
		fmt.Printf("best feasible found:   %.1f FPS, maxATE %.4f m, %.2f W\n",
			fps(fig2.BestFeasible.M.Runtime), fig2.BestFeasible.M.MaxATE, fig2.BestFeasible.M.Power)
		cfg, err := core.ConfigFromPoint(fig2.Space, fig2.BestFeasible.X)
		if err == nil {
			fmt.Printf("  → vr=%d csr=%d mu=%.3f pyr=%v ir=%d\n",
				cfg.VolumeResolution, cfg.ComputeSizeRatio, cfg.Mu,
				cfg.PyramidIterations, cfg.IntegrationRate)
		}
	}

	fmt.Println("\nPareto front (runtime vs max ATE):")
	for _, o := range fig2.Active.Front {
		marker := " "
		if o.M.MaxATE <= opts.AccuracyLimit {
			marker = "*" // feasible under the accuracy limit
		}
		fmt.Printf("  %s %7.1f FPS  maxATE %.4f m\n", marker, fps(o.M.Runtime), o.M.MaxATE)
	}

	fmt.Println("\nknowledge rules:")
	for _, r := range fig2.Knowledge {
		fmt.Println("  ", r)
	}
}

func fps(runtime float64) float64 {
	if runtime <= 0 {
		return 0
	}
	return 1 / runtime
}
