// Mobile: compare the default and a tuned KinectFusion configuration on
// a handful of named phone profiles from the 83-device catalogue — the
// per-device view behind Figure 3's speed-up distribution.
//
//	go run ./examples/mobile
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"slamgo/internal/core"
	"slamgo/internal/device"
	"slamgo/internal/imgproc"
	"slamgo/internal/kfusion"
	"slamgo/internal/phones"
)

func main() {
	scale := core.Scale{Width: 160, Height: 120, Frames: 24, Noisy: true, Seed: 42}

	tuned := kfusion.DefaultConfig()
	tuned.VolumeResolution = 96
	tuned.ComputeSizeRatio = 4
	tuned.IntegrationRate = 2

	fig3, err := core.RunFig3(tuned, scale, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Pick the recognisable anchor devices out of the sweep.
	wanted := []string{
		"galaxy-s3", "nexus-4", "galaxy-s5", "note4",
		"nexus-6p", "galaxy-s7", "pixel-", "galaxy-s8", "pixel2",
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "device\tyear\tdefault FPS\ttuned FPS\tspeed-up\treal-time (tuned)")
	for _, p := range fig3.Phones {
		for _, w := range wanted {
			if strings.HasPrefix(p.Device, w) {
				fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.1fx\t%v\n",
					p.Device, p.Year, p.DefaultFPS, p.TunedFPS, p.Speedup,
					p.TunedFPS >= 30)
			}
		}
	}
	tw.Flush()

	fmt.Printf("\nacross all %d devices: mean %.1fx, median %.1fx, range %.1f-%.1fx\n",
		len(fig3.Phones), fig3.Mean, fig3.Median, fig3.Min, fig3.Max)

	// Show the power side on one device class using the device model
	// directly: what the XU3's DVFS points trade.
	fmt.Println("\nODROID-XU3 operating points (tuned config, one 50 Mop / 40 MB frame):")
	model := device.NewModel(device.OdroidXU3())
	for _, op := range model.Points() {
		m, err := model.AtPoint(op)
		if err != nil {
			continue
		}
		st := m.ExecuteFrame(imgproc.Cost{Ops: 50e6, Bytes: 40e6}, 1.0/30)
		fmt.Printf("  %-10s %6.1f FPS  %.2f W  deadline met: %v\n",
			op, 1/st.Latency, st.Power, st.MetDeadline)
	}
	_ = phones.CatalogueSize
}
