#!/usr/bin/env bash
# Campaign-service smoke test: the HTTP front-end must be a transparent
# skin over the campaign engine. Phase A proves the report surface —
# a campaign submitted over HTTP, followed to completion via SSE, must
# produce a JSON report byte-identical to the same campaign run through
# cmd/experiments. Phase B proves durability — a server SIGTERMed
# mid-campaign checkpoints its in-flight work, a restarted server
# resumes the job to completion with a byte-identical report, and the
# evalstore counters prove no configuration was ever simulated twice:
# the resumed run simulates strictly less than a cold run, and a warm
# CLI run against the server's shared evaluation store simulates
# nothing at all.
set -euo pipefail
cd "$(dirname "$0")/.."

DIR=.serve-smoke
DATA=$DIR/data
SERVE=$DIR/dseserve
CLI=$DIR/experiments
SERVER_PID=""
SERVER_LOG=""

cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$DIR"
}
trap cleanup EXIT

rm -rf "$DIR"
mkdir -p "$DIR"

go build -o "$SERVE" ./cmd/dseserve
go build -o "$CLI" ./cmd/experiments

start_server() { # $1 = log file
  SERVER_LOG=$1
  rm -f "$DIR/addr"
  "$SERVE" -addr 127.0.0.1:0 -data "$DATA" -jobs 2 \
    -addr-file "$DIR/addr" -access-log off 2>"$SERVER_LOG" &
  SERVER_PID=$!
  for _ in $(seq 100); do
    [ -s "$DIR/addr" ] && break
    sleep 0.1
  done
  if ! [ -s "$DIR/addr" ]; then
    echo "serve-smoke: server wrote no address file" >&2
    cat "$SERVER_LOG" >&2
    exit 1
  fi
  ADDR=$(head -n1 "$DIR/addr")
}

stop_server() { # graceful SIGTERM drain; the server must exit cleanly
  kill -TERM "$SERVER_PID"
  if ! wait "$SERVER_PID"; then
    echo "serve-smoke: server did not drain cleanly" >&2
    cat "$SERVER_LOG" >&2
    exit 1
  fi
  SERVER_PID=""
}

json_field() { # $1 = json (on stdin is awkward in subshells), $2 = field
  printf '%s' "$1" | sed -n "s/.*\"$2\":\"\\{0,1\\}\\([a-z0-9_]*\\)\"\\{0,1\\}[,}].*/\\1/p" | head -n1
}

submit() { # $1 = spec json -> job id on stdout
  local resp
  resp=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "$1" "http://$ADDR/campaigns")
  local id
  id=$(json_field "$resp" id)
  if [ -z "$id" ]; then
    echo "serve-smoke: submit returned no job id: $resp" >&2
    exit 1
  fi
  printf '%s' "$id"
}

follow_to_done() { # $1 = job id, $2 = events capture file
  # The server ends the SSE stream at the job's terminal state, so a
  # plain blocking read suffices; --max-time guards against a hang.
  curl -fsS -N --max-time 600 \
    "http://$ADDR/campaigns/$1/events" >"$2"
  if ! grep -q '"state":"done"' "$2"; then
    echo "serve-smoke: job $1 did not reach done; last frames:" >&2
    tail -n 6 "$2" >&2
    exit 1
  fi
}

status_number() { # $1 = job id, $2 = numeric field
  curl -fsS "http://$ADDR/campaigns/$1" \
    | sed -n "s/.*\"$2\":\\([0-9]*\\).*/\\1/p"
}

# ---- Phase A: HTTP report byte-identical to the CLI ----

SPEC_A='{"quick":true,"scenarios":["lr_kt0"],"devices":["odroid-xu3"],"random_samples":4,"active_iterations":1,"batch_per_iteration":2}'

start_server "$DIR/server_a.log"
ID_A=$(submit "$SPEC_A")
follow_to_done "$ID_A" "$DIR/events_a.txt"
curl -fsS "http://$ADDR/campaigns/$ID_A/report?format=json" -o "$DIR/http_a.json"

"$CLI" -campaign -quick \
  -campaign-scenes lr_kt0 -campaign-devices odroid-xu3 \
  -random 4 -active 1 -batch 2 \
  -campaign-format json -o "$DIR/cli_a.json" 2>"$DIR/cli_a.log"

diff "$DIR/cli_a.json" "$DIR/http_a.json"
echo "serve-smoke phase A: served JSON report byte-identical to cmd/experiments"

# ---- Phase B: SIGTERM mid-campaign, restart, resume ----

SPEC_B='{"quick":true,"scenarios":["lr_kt0","of_kt0"],"devices":["odroid-xu3"],"random_samples":6,"active_iterations":1,"batch_per_iteration":2}'

# Cold CLI reference with its own evaluation store: the report the
# resumed server must reproduce, and the total simulation count a cold
# run needs (from the provenance on stderr).
"$CLI" -campaign -quick \
  -campaign-scenes lr_kt0,of_kt0 -campaign-devices odroid-xu3 \
  -random 6 -active 1 -batch 2 \
  -campaign-eval-cache "$PWD/$DIR/cli-evalcache" \
  -campaign-format json -o "$DIR/cli_b.json" 2>"$DIR/cli_b.log"
TOTAL_SIMS=$(sed -n 's/.*evalstore: simulations=\([0-9]*\).*/\1/p' "$DIR/cli_b.log" | head -n1)
if [ -z "$TOTAL_SIMS" ] || [ "$TOTAL_SIMS" -eq 0 ]; then
  echo "serve-smoke: cold CLI run reported no simulation count" >&2
  cat "$DIR/cli_b.log" >&2
  exit 1
fi

ID_B=$(submit "$SPEC_B")

# Wait for real progress (a first checkpointed cell), then SIGTERM the
# server mid-campaign.
for _ in $(seq 600); do
  events=$(status_number "$ID_B" cell_events)
  [ -n "$events" ] && [ "$events" -ge 1 ] && break
  sleep 0.1
done
if [ -z "$events" ] || [ "$events" -lt 1 ]; then
  echo "serve-smoke: job $ID_B made no progress before the kill window" >&2
  exit 1
fi
stop_server

# Restart over the same data directory: the interrupted job must
# resume from its checkpoints and finish.
start_server "$DIR/server_b.log"
if ! grep -q 'resumed 1 interrupted job' "$SERVER_LOG"; then
  # The job may legitimately have finished during the drain; accept a
  # done job on disk, reject anything else.
  state=$(curl -fsS "http://$ADDR/campaigns/$ID_B" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
  if [ "$state" != "done" ]; then
    echo "serve-smoke: restarted server neither resumed nor completed job $ID_B (state '$state')" >&2
    cat "$SERVER_LOG" >&2
    exit 1
  fi
fi
follow_to_done "$ID_B" "$DIR/events_b.txt"
curl -fsS "http://$ADDR/campaigns/$ID_B/report?format=json" -o "$DIR/http_b.json"
diff "$DIR/cli_b.json" "$DIR/http_b.json"

# Evalstore proof, part 1: the resumed run simulated strictly less
# than a cold run — the pre-SIGTERM work was not repeated.
RESUMED_SIMS=$(status_number "$ID_B" eval_simulations)
if [ -z "$RESUMED_SIMS" ] || [ "$RESUMED_SIMS" -ge "$TOTAL_SIMS" ]; then
  echo "serve-smoke: resumed run simulated $RESUMED_SIMS, want < cold total $TOTAL_SIMS" >&2
  exit 1
fi
stop_server

# Evalstore proof, part 2: the server's shared evaluation store now
# covers the whole campaign — a warm CLI run against it simulates
# nothing and still renders identical bytes.
"$CLI" -campaign -quick \
  -campaign-scenes lr_kt0,of_kt0 -campaign-devices odroid-xu3 \
  -random 6 -active 1 -batch 2 \
  -campaign-eval-cache "$PWD/$DATA/evalcache" \
  -campaign-format json -o "$DIR/cli_warm.json" 2>"$DIR/cli_warm.log"
WARM_SIMS=$(sed -n 's/.*evalstore: simulations=\([0-9]*\).*/\1/p' "$DIR/cli_warm.log" | head -n1)
if [ "$WARM_SIMS" != "0" ]; then
  echo "serve-smoke: warm CLI run against the server store simulated $WARM_SIMS, want 0" >&2
  cat "$DIR/cli_warm.log" >&2
  exit 1
fi
diff "$DIR/cli_b.json" "$DIR/cli_warm.json"

echo "serve-smoke phase B: SIGTERMed server resumed from checkpoint (resumed sims $RESUMED_SIMS < cold $TOTAL_SIMS, warm re-run 0) with byte-identical report"
