#!/usr/bin/env bash
# Benchmark snapshot + regression check, modelled on wand's bench
# scripts: run the figure/kernel benchmarks into benchmarks/latest.txt,
# compare against benchmarks/baseline.txt with benchstat when one is
# installed, and distill the run into BENCH_<index>.json for tooling.
#
# The output index is the first argument (or $BENCH_INDEX); each PR
# bumps it so the JSON snapshots form a per-PR series next to the
# BENCH_*.json of earlier PRs.
#
#   ./scripts/bench-compare.sh 2
#   BENCH_PATTERN=Kernel BENCH_COUNT=10 ./scripts/bench-compare.sh 2
#
# The script is also a performance-regression gate over the gated
# benchmarks (BENCH_GATE_PATTERN, default the Kernel_ microbenchmarks
# plus the DSE-level Fig2_ benchmarks). The primary gate is
# statistical: with benchstat installed and BENCH_COUNT >= 5 samples,
# a gated benchmark fails the run iff benchstat reports a
# statistically significant sec/op or allocs/op increase — noise shows
# up as '~' and passes, real slowdowns show up as '+N.NN%' and fail,
# with no hand-tuned tolerance to mask small-but-real drifts. When
# benchstat is missing or the sample count is too small for a
# significance test, the gate falls back to mean thresholds
# (BENCH_GATE_PCT percent ns/op, default 20; BENCH_GATE_ALLOC_PCT
# percent allocs/op, default 10). Independently of either gate, a
# gated benchmark pinned at zero allocs/op fails on ANY allocation —
# zero is an invariant, not a statistic. BENCH_GATE=off disables all
# gating (e.g. when comparing across different hardware).
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH_INDEX="${1:-${BENCH_INDEX:-2}}"
BENCH_PATTERN="${BENCH_PATTERN:-.}"
BENCH_COUNT="${BENCH_COUNT:-3}"
OUT_DIR="benchmarks"
OUT_JSON="BENCH_${BENCH_INDEX}.json"
mkdir -p "$OUT_DIR"

echo "running benchmarks (pattern '$BENCH_PATTERN', count $BENCH_COUNT)..."
go test -run '^$' -bench "$BENCH_PATTERN" -benchmem -count "$BENCH_COUNT" . \
  | tee "$OUT_DIR/latest.txt"

HAVE_BENCHSTAT=0
if command -v benchstat >/dev/null 2>&1; then
  HAVE_BENCHSTAT=1
fi

if [ -f "$OUT_DIR/baseline.txt" ]; then
  if [ "$HAVE_BENCHSTAT" = 1 ]; then
    echo
    echo "benchstat baseline vs latest:"
    benchstat "$OUT_DIR/baseline.txt" "$OUT_DIR/latest.txt" | tee "$OUT_DIR/compare.txt"
  else
    echo "benchstat not installed; skipping statistical compare" >&2
    echo "(go install golang.org/x/perf/cmd/benchstat@latest when networked)" >&2
  fi
else
  echo "no $OUT_DIR/baseline.txt; run 'make bench-save' to pin this run as the baseline"
fi

# ---- regression gate ----
BENCH_GATE="${BENCH_GATE:-on}"
BENCH_GATE_PCT="${BENCH_GATE_PCT:-20}"
BENCH_GATE_ALLOC_PCT="${BENCH_GATE_ALLOC_PCT:-10}"
BENCH_GATE_PATTERN="${BENCH_GATE_PATTERN:-Kernel_|Fig2_}"

# gate_zero_alloc: unconditionally fail any gated benchmark whose
# baseline allocs/op is zero but which now allocates. A zero-alloc
# steady state is an engineered invariant (pools, cached renderings);
# the first allocation is a bug no significance test should excuse.
gate_zero_alloc() {
  awk -v pattern="$BENCH_GATE_PATTERN" '
    $1 ~ "^Benchmark" && $1 ~ pattern {
      name = $1
      for (i = 3; i < NF; i += 2) {
        if ($(i + 1) == "allocs/op") {
          if (FNR == NR) { bsum[name] += $i; bn[name]++ }
          else           { lsum[name] += $i; ln_[name]++ }
        }
      }
    }
    END {
      failed = 0
      for (name in lsum) {
        if (!(name in bsum)) continue
        if (bsum[name] / bn[name] == 0 && lsum[name] / ln_[name] > 0) {
          printf "  %-40s zero-alloc baseline now allocates %.1f allocs/op  FAIL\n",
                 name, lsum[name] / ln_[name]
          failed++
        }
      }
      exit failed > 0 ? 1 : 0
    }
  ' "$OUT_DIR/baseline.txt" "$OUT_DIR/latest.txt"
}

# gate_benchstat: parse the benchstat table. Rows live under metric
# section headers (sec/op / time/op for wall clock, allocs/op for
# allocations; B/op is reported but not gated). benchstat prints '~'
# for statistically insignificant deltas and a signed percentage for
# significant ones, in both its old (old/new/delta columns) and new
# (vs-base column) output formats — so the rule is simply: a gated,
# non-geomean row carrying a '+N%' delta in a gated section fails.
gate_benchstat() {
  awk -v pattern="$BENCH_GATE_PATTERN" '
    # Section headers name the metric; remember whether it is gated.
    /sec\/op|time\/op/ { metric = "time" }
    /allocs\/op/       { metric = "allocs" }
    /B\/op|bytes\/op/ && !/allocs/ { metric = "bytes" }
    {
      if ($1 !~ pattern || $1 ~ /^geomean/) next
      if (metric != "time" && metric != "allocs") next
      for (i = 2; i <= NF; i++) {
        if ($i ~ /^\+[0-9.]+%$/) {
          printf "  %-40s %s significantly regressed: %s  FAIL\n", $1, metric, $i
          failed++
          break
        }
      }
    }
    END { exit failed > 0 ? 1 : 0 }
  ' "$OUT_DIR/compare.txt"
}

# gate_thresholds: the pre-benchstat fallback — compare per-benchmark
# means against fixed tolerances. Used when benchstat is unavailable
# or the sample count is too small for a significance test.
gate_thresholds() {
  awk -v pct="$BENCH_GATE_PCT" -v apct="$BENCH_GATE_ALLOC_PCT" -v pattern="$BENCH_GATE_PATTERN" '
    # Mean ns/op and allocs/op per benchmark name, baseline first then
    # latest (FNR==NR selects the first file).
    $1 ~ "^Benchmark" && $1 ~ pattern {
      name = $1
      for (i = 3; i < NF; i += 2) {
        if ($(i + 1) == "ns/op") {
          if (FNR == NR) { bsum[name] += $i; bn[name]++ }
          else           { lsum[name] += $i; ln_[name]++ }
        } else if ($(i + 1) == "allocs/op") {
          if (FNR == NR) { basum[name] += $i; ban[name]++ }
          else           { lasum[name] += $i; lan[name]++ }
        }
      }
    }
    END {
      failed = 0; compared = 0
      for (name in lsum) {
        if (!(name in bsum)) continue
        compared++
        base = bsum[name] / bn[name]
        latest = lsum[name] / ln_[name]
        delta = 100 * (latest - base) / base
        verdict = "ok"
        if (delta > pct) { verdict = "FAIL"; failed++ }
        printf "  %-40s %12.0f -> %12.0f ns/op      %+6.1f%%  %s\n", name, base, latest, delta, verdict
        if ((name in lasum) && (name in basum)) {
          abase = basum[name] / ban[name]
          alatest = lasum[name] / lan[name]
          if (abase == 0) { adelta = (alatest > 0) ? apct + 1 : 0 }
          else            { adelta = 100 * (alatest - abase) / abase }
          averdict = "ok"
          if (adelta > apct) { averdict = "FAIL"; failed++ }
          printf "  %-40s %12.1f -> %12.1f allocs/op  %+6.1f%%  %s\n", name, abase, alatest, adelta, averdict
        }
      }
      if (compared == 0) {
        print "  no benchmarks matching " pattern " in both runs; nothing gated"
        exit 0
      }
      if (failed > 0) {
        printf "gate: %d benchmark metric(s) regressed beyond tolerance\n", failed
        exit 1
      }
    }
  ' "$OUT_DIR/baseline.txt" "$OUT_DIR/latest.txt"
}

if [ "$BENCH_GATE" != "off" ] && [ -f "$OUT_DIR/baseline.txt" ]; then
  echo
  GATE_OK=1
  if [ "$HAVE_BENCHSTAT" = 1 ] && [ "$BENCH_COUNT" -ge 5 ]; then
    echo "gate: benchstat significance test over '$BENCH_GATE_PATTERN' (fail on significant sec/op or allocs/op increase)"
    gate_benchstat || GATE_OK=0
    [ "$GATE_OK" = 1 ] && echo "  no statistically significant regressions"
  else
    [ "$HAVE_BENCHSTAT" = 1 ] && \
      echo "gate: only $BENCH_COUNT sample(s) — too few for a significance test; using mean thresholds (BENCH_COUNT>=5 enables benchstat gating)"
    echo "gate: '$BENCH_GATE_PATTERN' vs pinned baseline (fail >${BENCH_GATE_PCT}% slower or >${BENCH_GATE_ALLOC_PCT}% more allocs/op)"
    gate_thresholds || GATE_OK=0
  fi
  gate_zero_alloc || GATE_OK=0
  if [ "$GATE_OK" != 1 ]; then
    echo "bench-compare: benchmark regression gate FAILED (set BENCH_GATE=off to bypass, or 'make bench-save' to accept)" >&2
    exit 1
  fi
fi

# Distill the raw 'go test -bench' output into a JSON array so CI and
# the next PR can diff allocation counts without parsing benchmark text.
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
  name = $1; iters = $2
  ns = ""; bytes = ""; allocs = ""
  extras = ""
  for (i = 3; i < NF; i += 2) {
    val = $i; unit = $(i + 1)
    if (unit == "ns/op") ns = val
    else if (unit == "B/op") bytes = val
    else if (unit == "allocs/op") allocs = val
    else {
      gsub(/"/, "", unit)
      extras = extras sprintf(", \"%s\": %s", unit, val)
    }
  }
  if (!first) print ","
  first = 0
  printf "  {\"name\": \"%s\", \"iters\": %s", name, iters
  if (ns != "") printf ", \"ns_per_op\": %s", ns
  if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
  if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
  printf "%s}", extras
}
END { print ""; print "]" }
' "$OUT_DIR/latest.txt" > "$OUT_JSON"
echo "wrote $OUT_JSON ($(grep -c '"name"' "$OUT_JSON") benchmarks)"
