#!/usr/bin/env bash
# Distributed-campaign smoke test: two OS processes share one checkpoint
# directory as cooperating workers, one of them is SIGKILLed mid-run,
# and the survivor (plus the takeover protocol) must still finish the
# campaign with a report byte-identical to an uninterrupted
# single-process run. This is the end-to-end proof of the worker-lease
# protocol: in-process tests cover the same invariants under -race, this
# script covers real processes and a real kill.
set -euo pipefail
cd "$(dirname "$0")/.."

DIR=.campaign-distributed-smoke
BIN=$DIR/experiments
FLAGS=(-campaign -quick
  -campaign-scenes lr_kt0,of_kt0
  -campaign-devices odroid-xu3,pixel-adreno530
  -random 6 -active 1 -batch 2
  -campaign-cell-stride 2 -campaign-cell-promote 0.5)

rm -rf "$DIR"
mkdir -p "$DIR"
trap 'rm -rf "$DIR"' EXIT

go build -o "$BIN" ./cmd/experiments

# Reference: uninterrupted single-process run, no checkpoints.
"$BIN" "${FLAGS[@]}" -o "$DIR/reference.txt" 2>/dev/null

# Two cooperating workers, short lease TTL so the survivor reclaims the
# victim's cells quickly after the kill.
"$BIN" "${FLAGS[@]}" \
  -campaign-checkpoint "$DIR/store" -campaign-worker-id victim \
  -campaign-lease-ttl 2s -o "$DIR/victim.txt" 2>"$DIR/victim.log" &
VICTIM=$!
"$BIN" "${FLAGS[@]}" \
  -campaign-checkpoint "$DIR/store" -campaign-worker-id survivor \
  -campaign-lease-ttl 2s -o "$DIR/survivor.txt" 2>"$DIR/survivor.log" &
SURVIVOR=$!

# SIGKILL the victim mid-campaign: no cleanup, no lease release — the
# worst crash the protocol must absorb.
sleep 2
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true

if ! wait "$SURVIVOR"; then
  echo "distributed-smoke: surviving worker failed" >&2
  cat "$DIR/survivor.log" >&2
  exit 1
fi

diff "$DIR/reference.txt" "$DIR/survivor.txt"
echo "campaign-distributed-smoke: survivor's report byte-identical to uninterrupted run"
