#!/usr/bin/env bash
# Rendered-sequence-cache smoke test: two OS processes cooperate on one
# campaign through a shared checkpoint directory AND the shared
# content-addressed sequence cache underneath it; one process is
# SIGKILLed mid-run and one cache artifact is corrupted in place while
# the campaign is live. The survivor must still finish with a report
# byte-identical to an uncached single-process run — corruption is a
# silent re-render, the dead renderer's sequence lease is reclaimed, and
# no temp or lease files may be left behind. In-process tests cover the
# same invariants under -race; this script covers real processes, a real
# kill and real on-disk damage.
set -euo pipefail
cd "$(dirname "$0")/.."

DIR=.campaign-cache-smoke
BIN=$DIR/experiments
CACHE=$DIR/store/seqcache
FLAGS=(-campaign -quick
  -campaign-scenes lr_kt0,of_kt0
  -campaign-devices odroid-xu3,pixel-adreno530
  -random 6 -active 1 -batch 2
  -campaign-cell-stride 2 -campaign-cell-promote 0.5)

rm -rf "$DIR"
mkdir -p "$DIR"
trap 'rm -rf "$DIR"' EXIT

go build -o "$BIN" ./cmd/experiments

# Reference: uninterrupted single-process run, no checkpoints, no cache.
"$BIN" "${FLAGS[@]}" -campaign-seq-cache off -o "$DIR/reference.txt" 2>/dev/null

# Two cooperating workers share the checkpoint and (by default) the
# rendered-sequence cache at <checkpoint>/seqcache, with a short lease
# TTL so the survivor reclaims the victim's cell and sequence leases
# quickly after the kill.
"$BIN" "${FLAGS[@]}" \
  -campaign-checkpoint "$DIR/store" -campaign-worker-id victim \
  -campaign-lease-ttl 2s -o "$DIR/victim.txt" 2>"$DIR/victim.log" &
VICTIM=$!
"$BIN" "${FLAGS[@]}" \
  -campaign-checkpoint "$DIR/store" -campaign-worker-id survivor \
  -campaign-lease-ttl 2s -o "$DIR/survivor.txt" 2>"$DIR/survivor.log" &
SURVIVOR=$!

# As soon as the first artifact lands in the shared cache, damage it in
# place: the embedded checksum must turn the damage into a silent miss
# and re-render, never an error or a wrong report.
ARTIFACT=""
for _ in $(seq 1 200); do
  ARTIFACT=$(ls "$CACHE"/*.seq 2>/dev/null | head -n 1 || true)
  [ -n "$ARTIFACT" ] && break
  sleep 0.05
done
if [ -n "$ARTIFACT" ]; then
  printf 'CORRUPT!' | dd of="$ARTIFACT" bs=1 seek=128 conv=notrunc 2>/dev/null
  echo "cache-smoke: corrupted $(basename "$ARTIFACT") mid-run"
else
  echo "cache-smoke: no cache artifact appeared to corrupt" >&2
  exit 1
fi

# SIGKILL the victim mid-campaign: no cleanup, no lease release — its
# cell leases AND any sequence render lease it held must be reclaimed.
sleep 2
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true

if ! wait "$SURVIVOR"; then
  echo "cache-smoke: surviving worker failed" >&2
  cat "$DIR/survivor.log" >&2
  exit 1
fi

diff "$DIR/reference.txt" "$DIR/survivor.txt"

# The survivor's provenance (stderr only) must show the cache was live.
grep -q 'seqcache: renders=' "$DIR/survivor.log" || {
  echo "cache-smoke: survivor provenance missing seqcache counters" >&2
  cat "$DIR/survivor.log" >&2
  exit 1
}

# Crash + corruption must not leak temp files into the store. (A .lease
# the victim held at kill time may legally persist until the next
# open's age-based sweep, so only temp files are a hard failure.)
LEAKED=$(find "$CACHE" -name '.tmp-*' 2>/dev/null || true)
if [ -n "$LEAKED" ]; then
  echo "cache-smoke: cache leaked temp files:" >&2
  echo "$LEAKED" >&2
  exit 1
fi

echo "campaign-cache-smoke: survivor's report byte-identical to uncached run despite kill + corrupted artifact"
