#!/usr/bin/env bash
# Transfer-learning smoke test: run the same 4-scenario × 2-device
# campaign grid with and without -campaign-transfer and enforce the
# acceptance bar end to end through real binaries:
#
#   1. the transfer-off table report must be byte-identical to the
#      golden captured before the transfer layer existed — transfer off
#      means *nothing* changed;
#   2. campaigncmp compares the off/on JSON reports: every warm-started
#      borrower spends ≥20% fewer full-fidelity evaluations, anchors
#      are untouched, and the summed shared-reference hypervolume of
#      the transfer fronts is equal or better.
#
# In-process tests cover the same invariants (plus determinism under
# -race) on a smaller grid; this script covers the real CLI surface on
# the grid the golden pins.
set -euo pipefail
cd "$(dirname "$0")/.."

DIR=.campaign-transfer-smoke
BIN=$DIR/experiments
CMP=$DIR/campaigncmp
FLAGS=(-campaign -quick
  -campaign-scenes lr_kt0,lr_kt1,lr_kt2,of_kt0
  -campaign-devices odroid-xu3,pixel-adreno530
  -random 8 -active 2 -batch 2)

rm -rf "$DIR"
mkdir -p "$DIR"
trap 'rm -rf "$DIR"' EXIT

go build -o "$BIN" ./cmd/experiments
go build -o "$CMP" ./cmd/campaigncmp

# Transfer off: the report must not have moved a byte since the golden
# was captured (pre-transfer seeding is golden-tested at the library
# layer too; this pins the whole binary).
"$BIN" "${FLAGS[@]}" -o "$DIR/off.txt" 2>/dev/null
diff scripts/testdata/transfer-smoke-off.golden "$DIR/off.txt"

# The same grid as JSON, off and on, for the structured comparison.
"$BIN" "${FLAGS[@]}" -campaign-format json -o "$DIR/off.json" 2>/dev/null
"$BIN" "${FLAGS[@]}" -campaign-format json -campaign-transfer \
  -o "$DIR/on.json" 2>"$DIR/on.log"

# The transfer campaign must say what it borrowed (stderr provenance).
grep -q 'warm start' "$DIR/on.log" || {
  echo "transfer-smoke: transfer campaign logged no warm starts" >&2
  cat "$DIR/on.log" >&2
  exit 1
}

"$CMP" -off "$DIR/off.json" -on "$DIR/on.json" -min-savings 20

echo "campaign-transfer-smoke: transfer-off byte-identical to golden; borrowers ≥20% cheaper at equal-or-better hypervolume"
