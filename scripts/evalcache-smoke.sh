#!/usr/bin/env bash
# Evaluation-store smoke test: real processes against a real on-disk
# store. A cold campaign run fills the persistent evaluation store, a
# warm re-run of the same campaign must simulate NOTHING (every
# configuration served from disk) while rendering a byte-identical
# report, and a record corrupted in place must be silently repaired by
# exactly one re-simulation — never an error, never a changed report.
# In-process tests cover the same invariants under -race; this script
# covers separate OS processes sharing the store across runs.
set -euo pipefail
cd "$(dirname "$0")/.."

DIR=.campaign-evalcache-smoke
BIN=$DIR/experiments
CACHE="$PWD/$DIR/evalcache"
FLAGS=(-campaign -quick
  -campaign-scenes lr_kt0,of_kt0
  -campaign-devices odroid-xu3,pixel-adreno530
  -random 6 -active 1 -batch 2
  -campaign-cell-stride 2 -campaign-cell-promote 0.5)

rm -rf "$DIR"
mkdir -p "$DIR"
trap 'rm -rf "$DIR"' EXIT

go build -o "$BIN" ./cmd/experiments

# Reference: plain run, no store — the report every cached run must
# reproduce byte for byte.
"$BIN" "${FLAGS[@]}" -o "$DIR/reference.txt" 2>/dev/null

# Cold run fills the store; the report must already be unchanged.
"$BIN" "${FLAGS[@]}" -campaign-eval-cache "$CACHE" \
  -o "$DIR/cold.txt" 2>"$DIR/cold.log"
diff "$DIR/reference.txt" "$DIR/cold.txt"
grep -q 'evalstore: simulations=' "$DIR/cold.log" || {
  echo "evalcache-smoke: cold run provenance missing evalstore counters" >&2
  cat "$DIR/cold.log" >&2
  exit 1
}
if grep -q 'evalstore: simulations=0 ' "$DIR/cold.log"; then
  echo "evalcache-smoke: cold run simulated nothing?" >&2
  exit 1
fi

RECORDS=$(find "$CACHE" -name '*.evr' | wc -l)
if [ "$RECORDS" -eq 0 ]; then
  echo "evalcache-smoke: cold run published no records" >&2
  exit 1
fi
echo "evalcache-smoke: cold run published $RECORDS records"

# Warm re-run in a fresh process: zero simulations, identical report.
"$BIN" "${FLAGS[@]}" -campaign-eval-cache "$CACHE" \
  -o "$DIR/warm.txt" 2>"$DIR/warm.log"
diff "$DIR/reference.txt" "$DIR/warm.txt"
grep -q 'evalstore: simulations=0 ' "$DIR/warm.log" || {
  echo "evalcache-smoke: warm run re-simulated despite a full store:" >&2
  grep 'evalstore:' "$DIR/warm.log" >&2 || cat "$DIR/warm.log" >&2
  exit 1
}
echo "evalcache-smoke: warm re-run served entirely from disk"

# Damage one record in place: the embedded checksum must turn it into a
# silent miss, repaired by exactly one re-simulation and re-publish.
VICTIM=$(find "$CACHE" -name '*.evr' | sort | head -n 1)
printf 'CORRUPT!' | dd of="$VICTIM" bs=1 seek=16 conv=notrunc 2>/dev/null
echo "evalcache-smoke: corrupted $(basename "$VICTIM")"

"$BIN" "${FLAGS[@]}" -campaign-eval-cache "$CACHE" \
  -o "$DIR/repair.txt" 2>"$DIR/repair.log"
diff "$DIR/reference.txt" "$DIR/repair.txt"
grep -Eq 'evalstore: simulations=1 disk-hits=[0-9]+ published=1 ' "$DIR/repair.log" || {
  echo "evalcache-smoke: corrupt record not repaired by exactly one simulation:" >&2
  grep 'evalstore:' "$DIR/repair.log" >&2 || cat "$DIR/repair.log" >&2
  exit 1
}

# The repair must have re-published a valid record: one more run, zero
# simulations again.
"$BIN" "${FLAGS[@]}" -campaign-eval-cache "$CACHE" \
  -o "$DIR/verify.txt" 2>"$DIR/verify.log"
diff "$DIR/reference.txt" "$DIR/verify.txt"
grep -q 'evalstore: simulations=0 ' "$DIR/verify.log" || {
  echo "evalcache-smoke: repaired record not served on the next run:" >&2
  grep 'evalstore:' "$DIR/verify.log" >&2
  exit 1
}

# Clean completion must leave no temp or lease files in the store.
LEAKED=$(find "$CACHE" -name '.tmp-*' -o -name '*.lease' 2>/dev/null || true)
if [ -n "$LEAKED" ]; then
  echo "evalcache-smoke: store leaked temp/lease files:" >&2
  echo "$LEAKED" >&2
  exit 1
fi

echo "campaign-evalcache-smoke: warm re-runs simulate nothing and corruption is silently repaired, reports byte-identical throughout"
