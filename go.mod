module slamgo

go 1.21
