// Command dseserve is the campaign service: a long-running HTTP
// front-end over the staged campaign engine. Campaigns are submitted
// as JSON specs and run as durable jobs — checkpointed per cell,
// sharing one evaluation store and one rendered-sequence cache across
// all tenants — so no configuration is ever simulated twice and a
// restarted server resumes interrupted jobs from their checkpoints.
//
//	dseserve -data /var/lib/dseserve -addr :8080
//
// API:
//
//	POST /campaigns              submit a spec (idempotent by content)
//	GET  /campaigns/{id}         status + per-cell progress
//	GET  /campaigns/{id}/events  SSE stream of stage/cell transitions
//	GET  /campaigns/{id}/report  ?format=json|csv|table
//	POST /campaigns/{id}/cancel  cooperative checkpoint-clean cancel
//	GET  /healthz                liveness, job counts, heap stats
//	GET  /debug/pprof/           standard profiling surface
//
// SIGTERM/SIGINT drain gracefully: new submissions are refused,
// in-flight cells finish and checkpoint, then the process exits; the
// next start resumes the interrupted jobs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"slamgo/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port with -addr-file)")
		data         = flag.String("data", "", "data directory: per-job checkpoints plus the shared evaluation store and sequence cache (required)")
		jobs         = flag.Int("jobs", 2, "campaigns running concurrently; excess submissions queue in order")
		accessLog    = flag.String("access-log", "-", "access log destination: a file path, \"-\" for stderr, or \"off\"")
		addrFile     = flag.String("addr-file", "", "write the bound listen address to this file once serving (readiness signal for scripts)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Minute, "maximum time to wait for in-flight cells to checkpoint on shutdown")
	)
	flag.Parse()
	if *data == "" {
		fatal(errors.New("-data is required"))
	}

	logger := log.New(os.Stderr, "[dseserve] ", log.LstdFlags)

	var accessOut *os.File
	switch *accessLog {
	case "off":
	case "-":
		accessOut = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		accessOut = f
	}

	m, err := serve.NewManager(*data, *jobs, logger.Printf)
	if err != nil {
		fatal(err)
	}
	resumed, err := m.Resume()
	if err != nil {
		fatal(err)
	}
	if resumed > 0 {
		logger.Printf("resumed %d interrupted job(s) from %s", resumed, *data)
	}

	// A nil *os.File must become a nil interface, or the logger would
	// dereference a typed nil on its first request.
	var accessWriter io.Writer
	if accessOut != nil {
		accessWriter = accessOut
	}
	var handler http.Handler = serve.NewServer(m, accessWriter)
	srv := &http.Server{
		Handler: handler,
		// Per-request hygiene: slow headers are cut fast, idle keep-alive
		// connections are reaped, but there is no global write deadline —
		// SSE streams live as long as their campaigns.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	logger.Printf("serving on %s (data %s, %d concurrent jobs)", ln.Addr(), *data, *jobs)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigCh:
		logger.Printf("%s: draining (in-flight cells finish and checkpoint)", sig)
	case err := <-errCh:
		fatal(err)
	}

	// Drain order matters: refuse new work and stop the campaigns first
	// (jobs reach a terminal state, which ends their SSE streams), then
	// shut the HTTP server down — Shutdown waits for active handlers,
	// and by now none of them can block indefinitely.
	drained := make(chan struct{})
	go func() { m.Drain(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(*drainTimeout):
		logger.Printf("drain timeout after %s; exiting with jobs still checkpointing", *drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	logger.Printf("drained; bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dseserve:", err)
	os.Exit(1)
}
