// Command hypermapper runs the paper's design-space exploration
// (Figure 2) on the simulated ODROID-XU3: random sampling, active
// learning over random-forest surrogates, Pareto-front extraction,
// knowledge-tree rules, and the headline default-vs-tuned comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"slamgo/internal/core"
	"slamgo/internal/hypermapper"
)

func main() {
	var (
		random    = flag.Int("random", 20, "random-phase evaluations")
		active    = flag.Int("active", 5, "active-learning iterations")
		batch     = flag.Int("batch", 4, "evaluations per active iteration")
		limit     = flag.Float64("limit", 0.05, "accuracy limit (max ATE, metres)")
		seed      = flag.Int64("seed", 1, "exploration seed")
		workers   = flag.Int("workers", 0, "parallel evaluation workers (0 = all CPUs; results are identical for any value)")
		mfStride  = flag.Int("mf-stride", 0, "multi-fidelity frame stride (>1 screens candidates on a subsampled sequence; 0 = full fidelity only)")
		mfPromote = flag.Float64("mf-promote", 0.25, "fraction of each batch promoted to full-fidelity runs (with -mf-stride)")
		quick     = flag.Bool("quick", false, "use the reduced quick scale")
		frames    = flag.Int("frames", 0, "override sequence length")
		scatter   = flag.String("scatter", "", "write the Figure 2 scatter CSV here")
		obsPath   = flag.String("obs", "", "persist all evaluated configurations (HyperMapper-style CSV)")
		headline  = flag.Bool("headline", true, "derive the headline default-vs-tuned numbers")
		knowledge = flag.Bool("knowledge", true, "print the extracted knowledge rules")
	)
	flag.Parse()

	opts := core.DefaultFig2Options()
	if *quick {
		opts.Scale = core.QuickScale()
	}
	if *frames > 0 {
		opts.Scale.Frames = *frames
	}
	opts.RandomSamples = *random
	opts.ActiveIterations = *active
	opts.BatchPerIteration = *batch
	opts.AccuracyLimit = *limit
	opts.Seed = *seed
	opts.Workers = *workers
	opts.FidelityStride = *mfStride
	opts.PromoteFraction = *mfPromote
	opts.Log = func(s string) { fmt.Println("  [dse]", s) }

	fmt.Printf("design-space exploration on lr_kt%d (%dx%d, %d frames), accuracy limit %.3f m\n",
		opts.Scale.KT, opts.Scale.Width, opts.Scale.Height, opts.Scale.Frames, opts.AccuracyLimit)

	fig2, err := core.RunFig2(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hypermapper:", err)
		os.Exit(1)
	}

	printScatterSummary(fig2)
	if *scatter != "" {
		if err := writeScatter(*scatter, fig2); err != nil {
			fmt.Fprintln(os.Stderr, "hypermapper:", err)
			os.Exit(1)
		}
		fmt.Println("scatter CSV →", *scatter)
	}

	if *obsPath != "" {
		f, err := os.Create(*obsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hypermapper:", err)
			os.Exit(1)
		}
		all := append(append([]hypermapper.Observation(nil),
			fig2.Active.Observations...), fig2.RandomOnly...)
		if err := hypermapper.WriteObservations(f, fig2.Space, all); err != nil {
			fmt.Fprintln(os.Stderr, "hypermapper:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Println("observations CSV →", *obsPath)
	}

	if *knowledge && len(fig2.Knowledge) > 0 {
		fmt.Println("\nknowledge rules (Figure 2, right):")
		for _, r := range fig2.Knowledge {
			fmt.Println("  ", r)
		}
	}

	if len(fig2.RuntimeImportance) > 0 {
		fmt.Println("\nparameter sensitivity (mean decrease in impurity):")
		fmt.Println("  parameter            runtime   maxATE")
		for _, p := range fig2.Space.Params {
			fmt.Printf("  %-20s %6.1f%%  %6.1f%%\n", p.Name,
				100*fig2.RuntimeImportance[p.Name], 100*fig2.ATEImportance[p.Name])
		}
	}

	if *headline {
		head, err := core.RunHeadline(fig2, opts.Scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hypermapper: headline:", err)
			os.Exit(1)
		}
		fmt.Println("\nheadline (default vs tuned on ODROID-XU3 model):")
		fmt.Printf("  default: %6.2f FPS  %5.2f W  maxATE %.4f m\n",
			fps(head.Default.Runtime), head.Default.Power, head.Default.MaxATE)
		fmt.Printf("  tuned:   %6.2f FPS  %5.2f W  maxATE %.4f m  (OPP %s)\n",
			fps(head.TunedLowPower.Runtime), head.TunedLowPower.Power,
			head.TunedLowPower.MaxATE, head.TunedPoint)
		fmt.Printf("  speed-up %.1fx | power reduction %.1fx | real-time: %v\n",
			head.Speedup, head.PowerReduction, head.TunedMeetsRealTime)
		fmt.Printf("  tuned config: vr=%d csr=%d mu=%.3f pyr=%v ir=%d tr=%d\n",
			head.TunedConfig.VolumeResolution, head.TunedConfig.ComputeSizeRatio,
			head.TunedConfig.Mu, head.TunedConfig.PyramidIterations,
			head.TunedConfig.IntegrationRate, head.TunedConfig.TrackingRate)
	}
}

func fps(runtime float64) float64 {
	if runtime <= 0 {
		return 0
	}
	return 1 / runtime
}

func printScatterSummary(fig2 *core.Fig2Result) {
	countFeasible := func(obs []hypermapper.Observation) int {
		n := 0
		for _, o := range obs {
			if !o.M.Failed && !o.M.LowFidelity && o.M.MaxATE <= fig2.AccuracyLimit {
				n++
			}
		}
		return n
	}
	fmt.Printf("\nevaluations: %d active-learning (of which %d random seed), %d random-only baseline\n",
		len(fig2.Active.Observations), fig2.Active.RandomPhase, len(fig2.RandomOnly))
	fmt.Printf("feasible (maxATE ≤ %.3f): active %d | random %d\n",
		fig2.AccuracyLimit,
		countFeasible(fig2.Active.Observations), countFeasible(fig2.RandomOnly))
	fmt.Printf("default config: %.2f FPS, maxATE %.4f m, %.2f W\n",
		fps(fig2.DefaultMetrics.Runtime), fig2.DefaultMetrics.MaxATE, fig2.DefaultMetrics.Power)
	if fig2.HasBestFeasible {
		fmt.Printf("best feasible:  %.2f FPS, maxATE %.4f m, %.2f W\n",
			fps(fig2.BestFeasible.M.Runtime), fig2.BestFeasible.M.MaxATE, fig2.BestFeasible.M.Power)
	}
	fmt.Println("\nPareto front (runtime vs maxATE):")
	for _, o := range fig2.Active.Front {
		fmt.Printf("  %7.2f FPS  maxATE %.4f m  %5.2f W\n",
			fps(o.M.Runtime), o.M.MaxATE, o.M.Power)
	}
}

func writeScatter(path string, fig2 *core.Fig2Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "phase,runtime_s,max_ate_m,power_w,failed"); err != nil {
		return err
	}
	emit := func(phase string, obs []hypermapper.Observation) error {
		for _, o := range obs {
			failed := 0
			if o.M.Failed {
				failed = 1
			}
			if _, err := fmt.Fprintf(f, "%s,%.6f,%.6f,%.3f,%d\n",
				phase, o.M.Runtime, o.M.MaxATE, o.M.Power, failed); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("random_seed", fig2.Active.Observations[:fig2.Active.RandomPhase]); err != nil {
		return err
	}
	if err := emit("active", fig2.Active.Observations[fig2.Active.RandomPhase:]); err != nil {
		return err
	}
	if err := emit("random_only", fig2.RandomOnly); err != nil {
		return err
	}
	_, err = fmt.Fprintf(f, "default,%.6f,%.6f,%.3f,0\n",
		fig2.DefaultMetrics.Runtime, fig2.DefaultMetrics.MaxATE, fig2.DefaultMetrics.Power)
	return err
}
