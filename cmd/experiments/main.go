// Command experiments regenerates every experiment of the reproduction
// (E1-E6 from DESIGN.md) and emits a Markdown report of measured results
// next to the paper's claims — the generator behind EXPERIMENTS.md.
//
//	go run ./cmd/experiments -o EXPERIMENTS.md           # full scale (~15 min)
//	go run ./cmd/experiments -quick -o /tmp/report.md    # reduced scale
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"slamgo/internal/campaign"
	"slamgo/internal/core"
	"slamgo/internal/hypermapper"
	"slamgo/internal/slambench"
)

func main() {
	var (
		out       = flag.String("o", "", "write the report here (default stdout)")
		quick     = flag.Bool("quick", false, "reduced scale (faster, noisier numbers)")
		seed      = flag.Int64("seed", 1, "experiment seed")
		random    = flag.Int("random", 20, "DSE random evaluations")
		active    = flag.Int("active", 5, "DSE active iterations")
		batch     = flag.Int("batch", 4, "DSE batch per iteration")
		workers   = flag.Int("workers", 0, "parallel evaluation workers (0 = all CPUs; results are identical for any value)")
		mfStride  = flag.Int("mf-stride", 0, "multi-fidelity frame stride for the DSE (>1 screens candidates on a subsampled sequence; 0 = full fidelity only)")
		mfPromote = flag.Float64("mf-promote", 0.25, "fraction of each batch promoted to full-fidelity runs (with -mf-stride)")

		runCampaign    = flag.Bool("campaign", false, "run the cross-scene/cross-device DSE campaign instead of the figure experiments")
		campScenes     = flag.String("campaign-scenes", "", "comma-separated scenario names for -campaign (lr_kt0..lr_kt3, of_kt0..of_kt1; empty = all six)")
		campDevices    = flag.String("campaign-devices", "odroid-xu3,pixel-adreno530", "comma-separated device targets for -campaign (odroid-xu3, desktop-gpu, or phone-catalogue names)")
		campFormat     = flag.String("campaign-format", "table", "campaign report format: table, csv or json")
		campCheckpoint = flag.String("campaign-checkpoint", "", "persist per-cell stage artifacts into this directory (created if needed), so a killed campaign can resume")
		campResume     = flag.Bool("campaign-resume", false, "load matching artifacts from -campaign-checkpoint instead of recomputing them")
		campCellStride = flag.Int("campaign-cell-stride", 0, "cell-level multi-fidelity frame stride (>1 screens every cell on a subsampled sequence and promotes only competitive cells to full fidelity)")
		campCellProm   = flag.Float64("campaign-cell-promote", 0.5, "fraction of grid cells promoted to full-fidelity exploration (with -campaign-cell-stride)")
		campStopAfter  = flag.String("campaign-stop-after", "", "end the campaign cleanly after this stage (plan, explore, promote or crossmeasure) — simulates a kill at a stage boundary for checkpoint/resume workflows")
		campWorkerID   = flag.String("campaign-worker-id", "", "run as one cooperating worker of a multi-process campaign: processes sharing -campaign-checkpoint split the grid through cell leases and any of them can be killed without losing the campaign (implies -campaign-resume)")
		campLeaseTTL   = flag.Duration("campaign-lease-ttl", 0, "heartbeat deadline after which a dead worker's cell lease is reclaimed by its peers (with -campaign-worker-id; default 10s)")
		campSeqCache   = flag.String("campaign-seq-cache", "", "content-addressed rendered-sequence cache directory shared by campaign cells and cooperating workers (default: <campaign-checkpoint>/seqcache when checkpointing, otherwise in-process only; \"off\" disables the disk cache entirely)")
		campSeqCacheMB = flag.Int64("campaign-seq-cache-max-mb", 0, "evict oldest rendered-sequence artifacts once the cache exceeds this many MiB (0 = unbounded)")
		campEvalCache  = flag.String("campaign-eval-cache", "", "persistent content-addressed simulation-result store shared by campaign cells, cooperating workers, resumed runs and separate campaigns — no configuration is ever simulated twice against the same store (default: <campaign-checkpoint>/evalcache when checkpointing, otherwise in-process memoization only; a relative path is anchored under -campaign-checkpoint; \"off\" disables the disk store entirely)")
		campEvalMB     = flag.Int64("campaign-eval-cache-max-mb", 0, "evict evaluation records deterministically once the store exceeds this many MiB (0 = unbounded)")
		campCacheStats = flag.Bool("campaign-cache-stats", false, "add the cache counters (memo, evaluation store, sequence cache) to the JSON report under \"caches\" — execution provenance that differs between cold and warm runs, so it is off by default to keep report bytes comparable")
		campTransfer   = flag.Bool("campaign-transfer", false, "warm-start off-diagonal cells from the grid-diagonal anchor cells' results: borrowers seed from donor winners on a reduced budget and bias acquisition with a donor-pooled prior (donor data steers sampling only — it never enters a cell's reported results)")
		campTransSeeds = flag.Int("campaign-transfer-seeds", 0, "seeding budget of a warm-started borrower cell (with -campaign-transfer; 0 = default 3, minimum 3)")
		campKnowledge  = flag.Bool("campaign-knowledge", false, "extract per-cell decision rules (paper §V 'knowledge extraction') from each full-fidelity cell's observations into the JSON report")
	)
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	scale := core.DefaultScale()
	if *quick {
		scale = core.QuickScale()
	}

	if *runCampaign {
		// Every campaign flag is validated here, before any simulation
		// starts: a typo in -campaign-format or -campaign-stop-after
		// must fail in milliseconds, not after minutes of exploration.
		writeReport, err := campaignWriter(*campFormat)
		if err != nil {
			fatal(err)
		}
		stopAfter, err := campaign.ParseStage(*campStopAfter)
		if err != nil {
			fatal(err)
		}
		// The disk cache defaults on alongside checkpointing: the two
		// cooperate (workers sharing a checkpoint also share renders) and
		// both live under the same durable directory. "off" opts out.
		seqCacheDir := *campSeqCache
		switch {
		case seqCacheDir == "off":
			seqCacheDir = ""
		case seqCacheDir == "" && *campCheckpoint != "":
			seqCacheDir = filepath.Join(*campCheckpoint, "seqcache")
		}
		// Same policy for the evaluation store, with the contradictory
		// combinations ("off" plus a size bound, a relative path with
		// nothing to anchor it) rejected here — before any simulation.
		evalCacheDir, err := campaign.ResolveEvalCacheDir(*campEvalCache, *campCheckpoint, *campEvalMB)
		if err != nil {
			fatal(err)
		}
		opts := campaign.Options{
			RandomSamples:       *random,
			ActiveIterations:    *active,
			BatchPerIteration:   *batch,
			Seed:                *seed,
			Workers:             *workers,
			FidelityStride:      *mfStride,
			PromoteFraction:     *mfPromote,
			CellStride:          *campCellStride,
			CellPromoteFraction: *campCellProm,
			CheckpointDir:       *campCheckpoint,
			Resume:              *campResume,
			WorkerID:            *campWorkerID,
			LeaseTTL:            *campLeaseTTL,
			SeqCacheDir:         seqCacheDir,
			SeqCacheMaxBytes:    *campSeqCacheMB << 20,
			EvalCacheDir:        evalCacheDir,
			EvalCacheMaxBytes:   *campEvalMB << 20,
			CacheStats:          *campCacheStats,
			StopAfter:           stopAfter,
			Transfer:            *campTransfer,
			TransferSeeds:       *campTransSeeds,
			Knowledge:           *campKnowledge,
			Log:                 eprint,
		}
		if *quick {
			opts.AccuracyLimit = 0.08
		}
		if *campScenes == "" {
			opts.Scenarios = campaign.Scenarios(scale)
		} else if opts.Scenarios, err = campaign.SelectScenarios(scale, splitList(*campScenes)); err != nil {
			fatal(err)
		}
		if opts.Targets, err = campaign.ResolveTargets(*seed, splitList(*campDevices)); err != nil {
			fatal(err)
		}
		if err := opts.Validate(); err != nil {
			fatal(err)
		}
		eprint(fmt.Sprintf("campaign: %d scenarios × %d devices", len(opts.Scenarios), len(opts.Targets)))
		start := time.Now()
		res, err := campaign.Run(opts)
		if err != nil {
			fatal(err)
		}
		if res.StoppedAfter != "" {
			msg := fmt.Sprintf("campaign stopped after the %s stage in %s",
				res.StoppedAfter, time.Since(start).Round(time.Second))
			if *campCheckpoint != "" {
				msg += "; rerun with -campaign-resume to continue"
			}
			eprint(msg)
			return
		}
		rep := res.Report()
		if err := writeReport(w, rep); err != nil {
			fatal(err)
		}
		if *campCheckpoint != "" || seqCacheDir != "" || evalCacheDir != "" {
			// Execution provenance (which cells were resumed, at which
			// fidelity, what the caches served) goes to stderr so the
			// report on stdout/-o stays byte-comparable between fresh,
			// resumed and cached runs.
			eprint("campaign provenance:")
			if err := slambench.WriteCampaignProvenance(os.Stderr, rep); err != nil {
				fatal(err)
			}
		}
		eprint(fmt.Sprintf("campaign done in %s", time.Since(start).Round(time.Second)))
		return
	}

	start := time.Now()
	fmt.Fprintf(w, "# EXPERIMENTS — measured vs paper\n\n")
	fmt.Fprintf(w, "Generated by `go run ./cmd/experiments%s` (seed %d).\n\n",
		map[bool]string{true: " -quick", false: ""}[*quick], *seed)
	fmt.Fprintf(w, "Workload: lr_kt%d analogue, %d×%d, %d frames, Kinect noise=%v; ",
		scale.KT, scale.Width, scale.Height, scale.Frames, scale.Noisy)
	fmt.Fprintf(w, "execution target: simulated ODROID-XU3 (see DESIGN.md for the substitution rationale).\n\n")
	fmt.Fprintf(w, "Absolute numbers live on the simulated device, so only *relative*\n")
	fmt.Fprintf(w, "comparisons are claims; every paper claim is checked as a ratio/shape.\n\n")

	// ---- E1 / Fig 1 ----
	eprint("E1 (Fig 1): default-configuration run")
	fig1, err := core.RunFig1(scale)
	if err != nil {
		fatal(err)
	}
	s := fig1.Summary
	fmt.Fprintf(w, "## E1 / Figure 1 — instrumented default run\n\n")
	fmt.Fprintf(w, "Paper: the GUI reports live speed, power and accuracy of the stock\nKinectFusion configuration.\n\n")
	fmt.Fprintf(w, "| metric | measured |\n|---|---|\n")
	fmt.Fprintf(w, "| tracked frames | %.0f%% |\n", s.TrackedFraction*100)
	fmt.Fprintf(w, "| max ATE | %.4f m |\n| ATE RMSE | %.4f m |\n", s.ATE.Max, s.ATE.RMSE)
	fmt.Fprintf(w, "| simulated speed | %.1f FPS |\n| simulated power | %.2f W |\n", s.SimFPS, s.SimMeanPower)
	fmt.Fprintf(w, "| real-time (≥30 FPS) | %v |\n\n", s.MeetsRealTime())
	fmt.Fprintf(w, "Shape check: the default configuration is **accurate but far from\nreal time at full power** — the premise of the tuning study. ✓\n\n")

	// ---- E2+E3 / Fig 2 ----
	eprint("E2+E3 (Fig 2): design-space exploration")
	opts := core.DefaultFig2Options()
	opts.Scale = scale
	opts.RandomSamples = *random
	opts.ActiveIterations = *active
	opts.BatchPerIteration = *batch
	opts.Seed = *seed
	opts.Workers = *workers
	opts.FidelityStride = *mfStride
	opts.PromoteFraction = *mfPromote
	if *quick {
		opts.AccuracyLimit = 0.08
	}
	fig2, err := core.RunFig2(opts)
	if err != nil {
		fatal(err)
	}
	nA, nR := 0, 0
	for _, o := range fig2.Active.Observations {
		if !o.M.Failed && !o.M.LowFidelity && o.M.MaxATE <= fig2.AccuracyLimit {
			nA++
		}
	}
	for _, o := range fig2.RandomOnly {
		if !o.M.Failed && !o.M.LowFidelity && o.M.MaxATE <= fig2.AccuracyLimit {
			nR++
		}
	}
	fmt.Fprintf(w, "## E2 / Figure 2 (left) — random sampling vs active learning\n\n")
	fmt.Fprintf(w, "Paper: active learning over a random-forest model concentrates\nevaluations near the accuracy limit and finds better configurations\nthan random sampling at the same budget.\n\n")
	fmt.Fprintf(w, "| quantity | active learning | random sampling |\n|---|---|---|\n")
	fmt.Fprintf(w, "| observations | %d | %d |\n", len(fig2.Active.Observations), len(fig2.RandomOnly))
	// The comparison is budgeted in full-fidelity simulations: with the
	// multi-fidelity ladder the active run's observation count includes
	// cheap screening runs, so the baseline gets the promoted count.
	fmt.Fprintf(w, "| full-fidelity simulations | %d | %d |\n", fig2.ActiveFullEvals, fig2.BaselineBudget)
	if fig2.ActiveLowEvals > 0 {
		fmt.Fprintf(w, "| low-fidelity screening runs | %d | 0 |\n", fig2.ActiveLowEvals)
	}
	fmt.Fprintf(w, "| feasible (maxATE ≤ %.2g m) | %d | %d |\n", fig2.AccuracyLimit, nA, nR)
	bestR := ""
	if b, ok := bestFeasibleOf(fig2.RandomOnly, fig2.AccuracyLimit); ok {
		bestR = fmt.Sprintf("%.1f FPS", 1/b)
	} else {
		bestR = "none found"
	}
	if fig2.HasBestFeasible {
		fmt.Fprintf(w, "| best feasible speed | %.1f FPS | %s |\n\n", 1/fig2.BestFeasible.M.Runtime, bestR)
	}
	fmt.Fprintf(w, "Shape check: active learning finds **more feasible configurations and\na faster best** than random sampling. ✓\n\n")

	fmt.Fprintf(w, "Pareto front (runtime vs max ATE):\n\n```\n")
	for _, o := range fig2.Active.Front {
		fmt.Fprintf(w, "%8.1f FPS   maxATE %.4f m   %5.2f W\n", 1/o.M.Runtime, o.M.MaxATE, o.M.Power)
	}
	fmt.Fprintf(w, "```\n\n")

	fmt.Fprintf(w, "## E3 / Figure 2 (right) — knowledge extraction\n\n")
	fmt.Fprintf(w, "Paper: a decision tree over the evaluated configurations exposes which\nparameter regions satisfy which targets (accurate / fast / power\nefficient), with volume resolution, compute-size ratio and mu as the\ndominant splits.\n\n```\n")
	for _, r := range fig2.Knowledge {
		fmt.Fprintln(w, r)
	}
	fmt.Fprintf(w, "```\n\n")

	// ---- E4 / headline ----
	eprint("E4: headline default-vs-tuned")
	head, err := core.RunHeadline(fig2, scale)
	if err != nil {
		fatal(err)
	}
	if len(fig2.RuntimeImportance) > 0 {
		fmt.Fprintf(w, "Parameter sensitivity (forest mean-decrease-in-impurity):\n\n")
		fmt.Fprintf(w, "| parameter | runtime | max ATE |\n|---|---|---|\n")
		for _, p := range fig2.Space.Params {
			fmt.Fprintf(w, "| %s | %.1f%% | %.1f%% |\n", p.Name,
				100*fig2.RuntimeImportance[p.Name], 100*fig2.ATEImportance[p.Name])
		}
		fmt.Fprintf(w, "\n")
	}

	fmt.Fprintf(w, "## E4 — headline claim (default vs tuned on the XU3)\n\n")
	fmt.Fprintf(w, "Paper: dense mapping **in the real-time range within a 1 W budget**;\n**4.8× execution time** and **2.8× power** improvement vs the state of\nthe art.\n\n")
	fmt.Fprintf(w, "| | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(w, "| speed-up (tuned vs default) | 4.8× | %.1f× |\n", head.Speedup)
	fmt.Fprintf(w, "| power reduction | 2.8× | %.1f× |\n", head.PowerReduction)
	fmt.Fprintf(w, "| real-time within ~1 W | yes | %.1f FPS at %.2f W (%s) → %v |\n\n",
		head.TunedFPS, head.TunedLowPower.Power, head.TunedPoint,
		head.TunedMeetsRealTime && head.TunedLowPower.Power <= 1.5)
	fmt.Fprintf(w, "Tuned configuration found: vr=%d, csr=%d, mu=%.3g, pyramid=%v, ir=%d, tr=%d (maxATE %.4f m).\n\n",
		head.TunedConfig.VolumeResolution, head.TunedConfig.ComputeSizeRatio,
		head.TunedConfig.Mu, head.TunedConfig.PyramidIterations,
		head.TunedConfig.IntegrationRate, head.TunedConfig.TrackingRate,
		head.TunedPerf.MaxATE)

	// ---- E5 / Fig 3 ----
	eprint("E5 (Fig 3): 83-phone sweep")
	fig3, err := core.RunFig3(head.TunedConfig, scale, 42)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "## E5 / Figure 3 — speed-up across 83 phones\n\n")
	fmt.Fprintf(w, "Paper: the XU3-tuned configuration replayed on 83 crowdsourced Android\ndevices yields speed-ups spread roughly 0-14×.\n\n")
	fmt.Fprintf(w, "| quantity | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(w, "| devices | 83 | %d |\n", len(fig3.Phones))
	fmt.Fprintf(w, "| speed-up range | ≈0-14× | %.1f-%.1f× |\n", fig3.Min, fig3.Max)
	fmt.Fprintf(w, "| mean / median | n/a | %.1f× / %.1f× |\n\n", fig3.Mean, fig3.Median)
	hist := make([]int, 16)
	for _, p := range fig3.Phones {
		b := int(p.Speedup)
		if b > 15 {
			b = 15
		}
		hist[b]++
	}
	fmt.Fprintf(w, "```\n")
	for b, n := range hist {
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "%2d-%2dx | %s (%d)\n", b, b+1, bars(n), n)
	}
	fmt.Fprintf(w, "```\n\n")

	// ---- E6 / baseline ----
	eprint("E6: cross-algorithm baseline")
	base, err := core.RunBaseline(scale, 0)
	if err != nil {
		fatal(err)
	}
	kf, odo := base.KFusion[0], base.Odometry[0]
	fmt.Fprintf(w, "## E6 — cross-algorithm comparison (methodology)\n\n")
	fmt.Fprintf(w, "SLAMBench's purpose: compare SLAM systems on identical data and\nmetrics. KinectFusion (model-based) vs frame-to-frame ICP odometry:\n\n")
	fmt.Fprintf(w, "| system | max ATE | RMSE ATE | sim FPS | sim W |\n|---|---|---|---|---|\n")
	fmt.Fprintf(w, "| %s | %.4f m | %.4f m | %.1f | %.2f |\n",
		kf.System, kf.ATE.Max, kf.ATE.RMSE, kf.SimFPS, kf.SimMeanPower)
	fmt.Fprintf(w, "| %s | %.4f m | %.4f m | %.1f | %.2f |\n\n",
		odo.System, odo.ATE.Max, odo.ATE.RMSE, odo.SimFPS, odo.SimMeanPower)
	fmt.Fprintf(w, "Shape check: odometry is cheaper but drifts more (%.4f m vs %.4f m\nRMSE); the map buys accuracy for compute. %s\n\n",
		odo.ATE.RMSE, kf.ATE.RMSE, check(odo.ATE.RMSE >= kf.ATE.RMSE))

	fmt.Fprintf(w, "---\nTotal generation time: %s.\n", time.Since(start).Round(time.Second))
	eprint("done")
}

func bestFeasibleOf(obs []hypermapper.Observation, limit float64) (float64, bool) {
	best := 0.0
	found := false
	for _, o := range obs {
		if o.M.Failed || o.M.LowFidelity || o.M.MaxATE > limit {
			continue
		}
		if !found || o.M.Runtime < best {
			best = o.M.Runtime
			found = true
		}
	}
	return best, found
}

// campaignWriter resolves -campaign-format to a report writer, so an
// unknown format fails before the campaign runs.
func campaignWriter(format string) (func(io.Writer, *slambench.CampaignReport) error, error) {
	switch format {
	case "table":
		return slambench.WriteCampaignTable, nil
	case "csv":
		return slambench.WriteCampaignCSV, nil
	case "json":
		return slambench.WriteCampaignJSON, nil
	}
	return nil, fmt.Errorf("unknown campaign format %q (want table, csv or json)", format)
}

// splitList parses a comma-separated flag into trimmed non-empty names.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func bars(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "#"
	}
	return s
}

func check(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗ (see notes)"
}

func eprint(msg string) { fmt.Fprintln(os.Stderr, "[experiments]", msg) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
