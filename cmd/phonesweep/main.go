// Command phonesweep reproduces Figure 3: the ODROID-tuned KinectFusion
// configuration replayed across the 83-device phone catalogue, reported
// as per-device speed-up over the default configuration, with an ASCII
// histogram matching the paper's bar chart.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"slamgo/internal/core"
	"slamgo/internal/kfusion"
)

func main() {
	var (
		vr      = flag.Int("vr", 96, "tuned volume resolution")
		csr     = flag.Int("csr", 4, "tuned compute size ratio")
		mu      = flag.Float64("mu", 0.1, "tuned mu distance")
		ir      = flag.Int("ir", 2, "tuned integration rate")
		seed    = flag.Int64("seed", 42, "phone catalogue seed")
		quick   = flag.Bool("quick", false, "use the reduced quick scale")
		frames  = flag.Int("frames", 0, "override sequence length")
		csvPath = flag.String("csv", "", "write per-device CSV here")
		decide  = flag.Bool("decide", false, "also train the per-device decision machine")
		ateLim  = flag.Float64("limit", 0.05, "accuracy limit for the decision machine")
	)
	flag.Parse()

	tuned := kfusion.DefaultConfig()
	tuned.VolumeResolution = *vr
	tuned.ComputeSizeRatio = *csr
	tuned.Mu = *mu
	tuned.IntegrationRate = *ir

	scale := core.DefaultScale()
	if *quick {
		scale = core.QuickScale()
	}
	if *frames > 0 {
		scale.Frames = *frames
	}

	fmt.Printf("replaying default vs tuned (vr=%d csr=%d mu=%.3f ir=%d) across 83 phones…\n",
		*vr, *csr, *mu, *ir)
	res, err := core.RunFig3(tuned, scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phonesweep:", err)
		os.Exit(1)
	}

	fmt.Printf("\nspeed-up: mean %.1fx | median %.1fx | min %.1fx | max %.1fx\n\n",
		res.Mean, res.Median, res.Min, res.Max)

	// Histogram over speed-up buckets (the paper's Figure 3 shape).
	const buckets = 14
	hist := make([]int, buckets+1)
	for _, p := range res.Phones {
		b := int(p.Speedup)
		if b > buckets {
			b = buckets
		}
		if b < 0 {
			b = 0
		}
		hist[b]++
	}
	fmt.Println("speed-up distribution:")
	for b, n := range hist {
		if n == 0 {
			continue
		}
		label := fmt.Sprintf("%2d-%2dx", b, b+1)
		if b == buckets {
			label = fmt.Sprintf("  >%2dx", buckets)
		}
		fmt.Printf("  %s | %s %d\n", label, strings.Repeat("#", n), n)
	}

	fmt.Println("\nslowest and fastest devices:")
	for _, i := range []int{0, 1, len(res.Phones) - 2, len(res.Phones) - 1} {
		if i < 0 || i >= len(res.Phones) {
			continue
		}
		p := res.Phones[i]
		fmt.Printf("  %-28s (%d)  default %6.2f FPS → tuned %7.2f FPS  (%.1fx)\n",
			p.Device, p.Year, p.DefaultFPS, p.TunedFPS, p.Speedup)
	}

	if *decide {
		fmt.Println("\ntraining the decision machine (per-device configuration recommender)…")
		dm, err := core.RunDecisionMachine(core.DefaultCandidates(), scale, *ateLim, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phonesweep:", err)
			os.Exit(1)
		}
		counts := map[int]int{}
		for _, c := range dm.Choices {
			counts[c.Choice]++
		}
		fmt.Println("recommended configuration shares:")
		for i, c := range dm.Candidates {
			fmt.Printf("  %-10s (vr=%d csr=%d ir=%d, maxATE %.3f m): %d devices\n",
				c.Name, c.Config.VolumeResolution, c.Config.ComputeSizeRatio,
				c.Config.IntegrationRate, dm.CandidateATE[i], counts[i])
		}
		if n := counts[-1]; n > 0 {
			fmt.Printf("  (no feasible candidate: %d devices)\n", n)
		}
		fmt.Printf("decision tree (training accuracy %.0f%%):\n", dm.TrainAccuracy*100)
		for _, r := range dm.Rules {
			fmt.Println("  ", r)
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phonesweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		fmt.Fprintln(f, "device,year,default_fps,tuned_fps,speedup")
		for _, p := range res.Phones {
			fmt.Fprintf(f, "%s,%d,%.3f,%.3f,%.3f\n",
				p.Device, p.Year, p.DefaultFPS, p.TunedFPS, p.Speedup)
		}
		fmt.Println("\nper-device CSV →", *csvPath)
	}
}
