// Command datasetgen renders a synthetic ICL-NUIM-style living-room
// sequence to disk: a .slam binary stream (depth in Kinect millimetres +
// ground-truth poses) plus a TUM-format ground-truth trajectory file.
package main

import (
	"flag"
	"fmt"
	"os"

	"slamgo/internal/dataset"
	"slamgo/internal/trajectory"
)

func main() {
	var (
		kt     = flag.Int("kt", 0, "living-room trajectory (0-3)")
		frames = flag.Int("frames", 120, "frames to render")
		width  = flag.Int("width", 320, "sensor width")
		height = flag.Int("height", 240, "sensor height")
		noisy  = flag.Bool("noisy", true, "apply the Kinect noise model")
		seed   = flag.Int64("seed", 42, "noise seed")
		out    = flag.String("o", "lr.slam", "output .slam path")
		gt     = flag.String("gt", "", "also write TUM ground truth here")
	)
	flag.Parse()

	fmt.Printf("rendering lr_kt%d (%dx%d, %d frames, noisy=%v)…\n",
		*kt, *width, *height, *frames, *noisy)
	seq, err := dataset.LivingRoomKT(*kt, dataset.PresetOptions{
		Width: *width, Height: *height, Frames: *frames,
		FPS: 30, Noisy: *noisy, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := dataset.WriteSlam(f, seq); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	st, _ := os.Stat(*out)
	fmt.Printf("sequence → %s (%.1f MB)\n", *out, float64(st.Size())/1e6)

	if *gt != "" {
		tr := &trajectory.Trajectory{}
		poses, times, err := dataset.GroundTruth(seq)
		if err != nil {
			fatal(err)
		}
		for i, p := range poses {
			tr.Append(times[i], p)
		}
		g, err := os.Create(*gt)
		if err != nil {
			fatal(err)
		}
		if err := dataset.WriteTUM(g, tr); err != nil {
			fatal(err)
		}
		if err := g.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("ground truth →", *gt)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datasetgen:", err)
	os.Exit(1)
}
