// Command slambench runs a SLAM system over a synthetic sequence and
// reports the paper's joint metrics (speed, accuracy, power) — the CLI
// analogue of the SLAMBench GUI in Figure 1 of the paper. It can also
// dump the GUI's four panes as PPM images, export the reconstructed mesh,
// and emit per-frame CSV for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"slamgo/internal/dataset"
	"slamgo/internal/device"
	"slamgo/internal/imgproc"
	"slamgo/internal/kfusion"
	"slamgo/internal/math3"
	"slamgo/internal/odometry"
	"slamgo/internal/sdf"
	"slamgo/internal/slambench"
	"slamgo/internal/trajectory"
)

func main() {
	var (
		slamPath = flag.String("slam", "", "run from a recorded .slam file (see cmd/datasetgen) instead of rendering a synthetic sequence; -kt/-frames/-width/-height/-noisy/-seed and -recon are ignored")
		kt       = flag.Int("kt", 0, "living-room trajectory (0-3)")
		frames   = flag.Int("frames", 120, "frames to render")
		width    = flag.Int("width", 320, "sensor width")
		height   = flag.Int("height", 240, "sensor height")
		noisy    = flag.Bool("noisy", true, "apply the Kinect noise model")
		seed     = flag.Int64("seed", 42, "noise seed")
		system   = flag.String("system", "kfusion", "kfusion | odometry")
		devName  = flag.String("device", "xu3", "xu3 | desktop | none")
		opp      = flag.String("opp", "", "device operating point (default nominal)")
		csr      = flag.Int("csr", 2, "compute size ratio")
		volRes   = flag.Int("vr", 256, "volume resolution (kfusion)")
		mu       = flag.Float64("mu", 0.1, "TSDF truncation distance (kfusion)")
		intRate  = flag.Int("ir", 1, "integration rate (kfusion)")
		csvPath  = flag.String("csv", "", "write per-frame CSV to this file")
		uiDir    = flag.String("ui", "", "dump GUI pane mosaics (PPM) into this directory")
		uiEvery  = flag.Int("ui-every", 10, "dump every Nth frame")
		meshPath = flag.String("mesh", "", "export the reconstruction as OBJ")
		kernels  = flag.Bool("kernels", false, "print the kernel cost breakdown")
		ascii    = flag.Bool("ascii", false, "print an ASCII render of the final model view")
		recon    = flag.Bool("recon", false, "measure reconstruction error against the true scene")
		trajPath = flag.String("traj", "", "write the estimated trajectory (TUM format) here")
		jsonPath = flag.String("json", "", "write the full summary as JSON here")
	)
	flag.Parse()

	if err := run(*slamPath, *kt, *frames, *width, *height, *noisy, *seed, *system, *devName,
		*opp, *csr, *volRes, *mu, *intRate, *csvPath, *uiDir, *uiEvery, *meshPath,
		*kernels, *ascii, *recon, *trajPath, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "slambench:", err)
		os.Exit(1)
	}
}

func run(slamPath string, kt, frames, width, height int, noisy bool, seed int64, system, devName,
	opp string, csr, volRes int, mu float64, intRate int, csvPath, uiDir string,
	uiEvery int, meshPath string, kernels, ascii, recon bool, trajPath, jsonPath string) error {

	// Sequence ownership: a FileSequence holds an open file and this
	// function owns it — the deferred Close runs on every path out,
	// error or success. Synthetic sequences are in-memory and need none.
	var seq dataset.Sequence
	if slamPath != "" {
		fs, err := dataset.OpenSlam(slamPath)
		if err != nil {
			return err
		}
		defer fs.Close()
		intr := fs.Intrinsics()
		fmt.Printf("streaming %s (%dx%d, %d frames)…\n", slamPath, intr.Width, intr.Height, fs.Len())
		seq = fs
		recon = false // the recorded scene is unknown; no ground-truth SDF to compare against
	} else {
		fmt.Printf("rendering lr_kt%d (%dx%d, %d frames, noisy=%v)…\n", kt, width, height, frames, noisy)
		mem, err := dataset.LivingRoomKT(kt, dataset.PresetOptions{
			Width: width, Height: height, Frames: frames, FPS: 30, Noisy: noisy, Seed: seed,
		})
		if err != nil {
			return err
		}
		seq = mem
	}

	var model *device.Model
	switch devName {
	case "xu3":
		model = device.NewModel(device.OdroidXU3())
	case "desktop":
		model = device.NewModel(device.DesktopGPU())
	case "none":
	default:
		return fmt.Errorf("unknown device %q", devName)
	}
	if model != nil && opp != "" {
		m, err := model.AtPoint(opp)
		if err != nil {
			return err
		}
		model = m
	}

	var sys slambench.System
	var kfSys *slambench.KFusionSystem
	switch system {
	case "kfusion":
		cfg := kfusion.DefaultConfig()
		cfg.ComputeSizeRatio = csr
		cfg.VolumeResolution = volRes
		cfg.Mu = mu
		cfg.IntegrationRate = intRate
		kfSys = slambench.NewKFusion(cfg, seq)
		sys = kfSys
	case "odometry":
		cfg := odometry.DefaultConfig()
		cfg.ComputeSizeRatio = csr
		sys = slambench.NewOdometry(cfg, seq)
	default:
		return fmt.Errorf("unknown system %q", system)
	}

	runner := &slambench.Runner{Model: model}
	if uiDir != "" && kfSys != nil {
		if err := os.MkdirAll(uiDir, 0o755); err != nil {
			return err
		}
		runner.PerFrame = func(rec slambench.FrameRecord) {
			if uiEvery <= 0 || rec.Index%uiEvery != 0 {
				return
			}
			if err := dumpPanes(uiDir, seq, kfSys, rec); err != nil {
				fmt.Fprintln(os.Stderr, "ui dump:", err)
			}
		}
	}

	sum, err := runner.Run(sys, seq)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(slambench.FormatSummary(sum))

	if kernels {
		fmt.Println("\nkernel breakdown:")
		if err := slambench.KernelBreakdown(os.Stdout, sum); err != nil {
			return err
		}
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := slambench.WriteCSV(f, sum); err != nil {
			return err
		}
		fmt.Println("per-frame CSV →", csvPath)
	}
	if meshPath != "" && kfSys != nil && kfSys.Pipeline() != nil {
		f, err := os.Create(meshPath)
		if err != nil {
			return err
		}
		defer f.Close()
		mesh := kfSys.Pipeline().Volume().ExtractMesh()
		if err := mesh.WriteOBJ(f); err != nil {
			return err
		}
		fmt.Printf("mesh (%d triangles) → %s\n", len(mesh.Triangles), meshPath)
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := slambench.WriteJSON(f, sum); err != nil {
			return err
		}
		fmt.Println("summary JSON →", jsonPath)
	}
	if trajPath != "" {
		tr := &trajectory.Trajectory{}
		for _, r := range sum.Records {
			tr.Append(r.Time, r.Pose)
		}
		f, err := os.Create(trajPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dataset.WriteTUM(f, tr); err != nil {
			return err
		}
		fmt.Println("estimated trajectory →", trajPath)
	}
	if recon && kfSys != nil && kfSys.Pipeline() != nil {
		mesh := kfSys.Pipeline().Volume().ExtractMesh()
		st, err := slambench.ReconstructionError(mesh, sdf.LivingRoom(), 50000)
		if err != nil {
			return err
		}
		fmt.Printf("\nreconstruction vs ground-truth scene (%d samples):\n", st.Vertices)
		fmt.Printf("  surface error: mean %.4f m | median %.4f m | p95 %.4f m | max %.4f m\n",
			st.Mean, st.Median, st.P95, st.Max)
	}
	if ascii && kfSys != nil && kfSys.Pipeline() != nil {
		if ref, ok := kfSys.Pipeline().Reference(); ok {
			img := slambench.NormalsToRGB(ref.Normals, refLight())
			fmt.Println("\nfinal model view:")
			fmt.Print(slambench.ASCIIRender(img, 78))
		}
	}
	return nil
}

// dumpPanes writes the four GUI panes of one frame as a 2×2 PPM mosaic.
func dumpPanes(dir string, seq dataset.Sequence, kf *slambench.KFusionSystem, rec slambench.FrameRecord) error {
	f, err := seq.Frame(rec.Index)
	if err != nil {
		return err
	}
	p := kf.Pipeline()
	if p == nil {
		return nil
	}
	depthPane := slambench.DepthToRGB(f.Depth)
	rgbPane := f.RGB
	if rgbPane == nil {
		rgbPane = depthPane // depth stands in when RGB was not rendered
	}
	var modelPane, statusPane *imgproc.RGB
	if ref, ok := p.Reference(); ok {
		modelPane = slambench.NormalsToRGB(ref.Normals, refLight())
		statusPane = slambench.TrackStatusToRGB(ref.Vertices, rec.Tracked)
	}
	// All panes must share a size: scale the sensor-resolution panes is
	// overkill here; render compute-resolution panes only.
	if modelPane == nil {
		return nil
	}
	w, h := modelPane.Width, modelPane.Height
	mosaic, err := slambench.Mosaic(
		resample(rgbPane, w, h), resample(depthPane, w, h),
		statusPane, modelPane,
	)
	if err != nil {
		return err
	}
	out, err := os.Create(filepath.Join(dir, fmt.Sprintf("frame_%04d.ppm", rec.Index)))
	if err != nil {
		return err
	}
	defer out.Close()
	return slambench.WritePPM(out, mosaic)
}

// resample nearest-neighbour rescales an RGB image.
func resample(src *imgproc.RGB, w, h int) *imgproc.RGB {
	if src.Width == w && src.Height == h {
		return src
	}
	dst := imgproc.NewRGB(w, h)
	for y := 0; y < h; y++ {
		sy := y * src.Height / h
		for x := 0; x < w; x++ {
			sx := x * src.Width / w
			r, g, b := src.At(sx, sy)
			dst.Set(x, y, r, g, b)
		}
	}
	return dst
}

func refLight() math3.Vec3 {
	return math3.V3(0.3, -0.8, -0.5)
}
