// Command campaigncmp compares a transfer-off and a transfer-on
// campaign JSON report over the same grid and enforces the transfer
// acceptance bar: every warm-started borrower cell must have spent at
// least -min-savings percent fewer full-fidelity evaluations than its
// transfer-off twin, anchors must be untouched (bit-identical fronts
// and spend), and the summed shared-reference hypervolume of the
// transfer campaign's fronts must be equal or better. It is the
// assertion half of scripts/transfer-smoke.sh; exit status 1 means the
// bar was missed, with one line per violation on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"

	"slamgo/internal/hypermapper"
	"slamgo/internal/slambench"
)

func main() {
	var (
		offPath    = flag.String("off", "", "transfer-off campaign JSON report (required)")
		onPath     = flag.String("on", "", "transfer-on campaign JSON report (required)")
		minSavings = flag.Float64("min-savings", 20, "minimum per-borrower full-fidelity evaluation savings, percent")
	)
	flag.Parse()
	if *offPath == "" || *onPath == "" {
		fmt.Fprintln(os.Stderr, "campaigncmp: both -off and -on are required")
		os.Exit(2)
	}
	off, err := load(*offPath)
	if err != nil {
		fatal(err)
	}
	on, err := load(*onPath)
	if err != nil {
		fatal(err)
	}

	violations := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "campaigncmp: "+format+"\n", args...)
		violations++
	}

	if !on.Transfer {
		fail("-on report has no transfer summary (was the campaign run with -campaign-transfer?)")
	}
	if off.Transfer {
		fail("-off report carries a transfer summary (it must be a plain campaign)")
	}
	if len(off.Cells) != len(on.Cells) {
		fail("grids differ: %d cells off, %d on", len(off.Cells), len(on.Cells))
	}
	if violations > 0 {
		os.Exit(1)
	}

	borrowers := 0
	for i := range on.Cells {
		oc, nc := &off.Cells[i], &on.Cells[i]
		if oc.Scenario != nc.Scenario || oc.Device != nc.Device {
			fail("cell %d is %s/%s off but %s/%s on — reports are not the same grid",
				i, oc.Scenario, oc.Device, nc.Scenario, nc.Device)
			continue
		}
		if nc.TransferBorrower && len(nc.TransferDonors) > 0 && nc.TransferSeeds > 0 {
			// A warm-started borrower: enforce the savings bar.
			borrowers++
			limit := float64(oc.FullFidelityEvals) * (1 - *minSavings/100)
			if float64(nc.FullFidelityEvals) > limit {
				fail("borrower %s/%s spent %d full-fidelity evals with transfer vs %d without (< %.0f%% savings)",
					nc.Scenario, nc.Device, nc.FullFidelityEvals, oc.FullFidelityEvals, *minSavings)
			}
			continue
		}
		// An anchor (or a degraded borrower that fell back to the full
		// budget): transfer must not have touched it.
		if nc.FullFidelityEvals != oc.FullFidelityEvals {
			fail("non-borrower %s/%s spent %d full-fidelity evals with transfer vs %d without — anchors must be untouched",
				nc.Scenario, nc.Device, nc.FullFidelityEvals, oc.FullFidelityEvals)
		}
		if !nc.TransferBorrower && !reflect.DeepEqual(nc.Front, oc.Front) {
			fail("anchor %s/%s front changed under transfer", nc.Scenario, nc.Device)
		}
	}
	if borrowers == 0 {
		fail("no warm-started borrower cells in the -on report")
	}

	// Shared-reference hypervolume across all fronts of both reports:
	// the transfer campaign's sum must be equal or better.
	fronts := make([][]hypermapper.Observation, 0, len(off.Cells)+len(on.Cells))
	for _, c := range off.Cells {
		fronts = append(fronts, front(c))
	}
	for _, c := range on.Cells {
		fronts = append(fronts, front(c))
	}
	hv := hypermapper.FrontHypervolumes(fronts, hypermapper.RuntimeAccuracy)
	offHV, onHV := 0.0, 0.0
	for i, v := range hv {
		if i < len(off.Cells) {
			offHV += v
		} else {
			onHV += v
		}
	}
	if onHV < offHV {
		fail("transfer degraded front quality: hypervolume %g with transfer vs %g without", onHV, offHV)
	}

	if violations > 0 {
		os.Exit(1)
	}
	fmt.Printf("campaigncmp: %d borrowers ≥%.0f%% cheaper, anchors untouched, hypervolume %g with transfer vs %g without\n",
		borrowers, *minSavings, onHV, offHV)
}

func load(path string) (*slambench.CampaignReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep slambench.CampaignReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// front lifts a report cell's front points back into observations so
// the comparison reuses the library's shared-reference hypervolume.
func front(c slambench.CampaignCell) []hypermapper.Observation {
	out := make([]hypermapper.Observation, len(c.Front))
	for i, p := range c.Front {
		out[i] = hypermapper.Observation{M: hypermapper.Metrics{
			Runtime: p.Runtime,
			MaxATE:  p.MaxATE,
			Power:   p.Power,
		}}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "campaigncmp:", err)
	os.Exit(2)
}
