// Command dsesoak exercises a running dseserve under sustained load:
// it submits a tiny campaign, waits for it to complete, then hammers
// the steady-state read surface (status, report, healthz) from many
// goroutines for a fixed duration while watching the server's heap
// through /healthz. It exits non-zero on any request error, any
// non-200 answer, or a heap that climbs past the ceiling — the
// process-level check that the read path really is allocation-free in
// steady state.
//
//	dsesoak -addr 127.0.0.1:8080 -duration 30s -concurrency 8 -heap-max-mb 512
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "dseserve address to soak")
		duration    = flag.Duration("duration", 30*time.Second, "how long to hammer the read surface")
		concurrency = flag.Int("concurrency", 8, "concurrent request loops")
		heapMaxMB   = flag.Uint64("heap-max-mb", 512, "fail if the server heap_alloc exceeds this many MiB during the soak")
		jobTimeout  = flag.Duration("job-timeout", 10*time.Minute, "give up if the seed campaign has not completed by then")
	)
	flag.Parse()
	base := "http://" + *addr

	client := &http.Client{Timeout: 30 * time.Second}

	// Seed job: the smallest real campaign (one quick cell, minimal
	// budget). Idempotent by content, so repeated soaks reuse it — and
	// the shared evaluation store makes the reruns free.
	spec := []byte(`{"quick":true,"scenarios":["lr_kt0"],"devices":["odroid-xu3"],"random_samples":4,"active_iterations":1,"batch_per_iteration":2}`)
	resp, err := client.Post(base+"/campaigns", "application/json", bytes.NewReader(spec))
	if err != nil {
		fatal(err)
	}
	var submitted struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("submit: HTTP %d", resp.StatusCode))
	}
	fmt.Fprintf(os.Stderr, "[dsesoak] job %s %s; waiting for completion\n", submitted.ID, submitted.State)

	statusURL := base + "/campaigns/" + submitted.ID
	deadline := time.Now().Add(*jobTimeout)
	for {
		state, err := jobState(client, statusURL)
		if err != nil {
			fatal(err)
		}
		if state == "done" {
			break
		}
		if state == "failed" || state == "canceled" {
			fatal(fmt.Errorf("seed job ended %s", state))
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("seed job still %s after %s", state, *jobTimeout))
		}
		time.Sleep(500 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "[dsesoak] job done; soaking for %s at concurrency %d\n", *duration, *concurrency)

	var (
		requests atomic.Int64
		failures atomic.Int64
		stop     = make(chan struct{})
		wg       sync.WaitGroup
	)
	urls := []string{statusURL, statusURL + "/report?format=json", statusURL + "/report?format=table", base + "/healthz"}
	for i := 0; i < *concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				u := urls[(i+n)%len(urls)]
				resp, err := client.Get(u)
				if err != nil {
					failures.Add(1)
					requests.Add(1)
					continue
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					failures.Add(1)
				} else if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				resp.Body.Close()
				requests.Add(1)
			}
		}(i)
	}

	// Heap watchdog: sample /healthz while the loops run.
	var peakHeap uint64
	heapFail := false
	soakEnd := time.Now().Add(*duration)
	for time.Now().Before(soakEnd) {
		time.Sleep(time.Second)
		heap, err := heapAlloc(client, base)
		if err != nil {
			continue // the request loops already count failures
		}
		if heap > peakHeap {
			peakHeap = heap
		}
		if heap > *heapMaxMB<<20 {
			heapFail = true
			break
		}
	}
	close(stop)
	wg.Wait()

	fmt.Fprintf(os.Stderr, "[dsesoak] %d requests, %d failures, peak heap %.1f MiB\n",
		requests.Load(), failures.Load(), float64(peakHeap)/(1<<20))
	if heapFail {
		fatal(fmt.Errorf("server heap exceeded %d MiB during soak", *heapMaxMB))
	}
	if failures.Load() > 0 {
		fatal(fmt.Errorf("%d of %d requests failed", failures.Load(), requests.Load()))
	}
	fmt.Fprintln(os.Stderr, "[dsesoak] ok")
}

func jobState(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status: HTTP %d", resp.StatusCode)
	}
	var st struct {
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", err
	}
	return st.State, nil
}

func heapAlloc(client *http.Client, base string) (uint64, error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var h struct {
		HeapAlloc uint64 `json:"heap_alloc_bytes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0, err
	}
	return h.HeapAlloc, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsesoak:", err)
	os.Exit(1)
}
