// Ablation benchmarks for the design choices DESIGN.md calls out:
// ICP residual formulation, integration rate, mu/truncation width,
// reconstruction accuracy measurement and the decision machine.
package slamgo_test

import (
	"testing"

	"slamgo/internal/core"
	"slamgo/internal/device"
	"slamgo/internal/icp"
	"slamgo/internal/imgproc"
	"slamgo/internal/kfusion"
	"slamgo/internal/sdf"
	"slamgo/internal/slambench"
)

// benchICPVariant measures one ICP solve of frame 1 against the model
// reference using either residual formulation.
func benchICPVariant(b *testing.B, pointToPoint bool) {
	seq := sequence(b)
	f0, _ := seq.Frame(0)
	cfg := tunedConfig()
	p, err := kfusion.New(cfg, seq.Intrinsics(), f0.GroundTruth)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.ProcessFrame(f0.Depth); err != nil {
		b.Fatal(err)
	}
	ref, ok := p.Reference()
	if !ok {
		b.Fatal("no reference")
	}
	f1, _ := seq.Frame(1)
	work := f1.Depth
	for r := cfg.ComputeSizeRatio; r > 1; r /= 2 {
		work, _ = imgproc.HalfSampleDepth(work, 0.1)
	}
	vm, _ := imgproc.DepthToVertexMap(work, p.ComputeIntrinsics().BackProject)
	nm, _ := imgproc.VertexToNormalMap(vm)
	params := icp.DefaultParams()
	params.PointToPoint = pointToPoint
	params.ConvergenceThreshold = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := icp.Solve(ref, icp.Frame{Vertices: vm, Normals: nm}, f0.GroundTruth, params)
		if res.Inliers == 0 {
			b.Fatal("no inliers")
		}
	}
}

// BenchmarkAblation_ICP_PointToPlane measures the KinectFusion residual.
func BenchmarkAblation_ICP_PointToPlane(b *testing.B) { benchICPVariant(b, false) }

// BenchmarkAblation_ICP_PointToPoint measures the classic residual (three
// rows per correspondence; slower per iteration and slower to converge).
func BenchmarkAblation_ICP_PointToPoint(b *testing.B) { benchICPVariant(b, true) }

// benchIntegrationRate reports the simulated XU3 FPS of a configuration
// as the integration rate is decimated.
func benchIntegrationRate(b *testing.B, rate int) {
	cfg := kfusion.DefaultConfig()
	cfg.VolumeResolution = 128
	cfg.IntegrationRate = rate
	sum := runOnce(b, cfg, device.NewModel(device.OdroidXU3()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sum // the measurement is the setup run; report its metrics
	}
	b.ReportMetric(sum.SimFPS, "simFPS")
	b.ReportMetric(sum.ATE.Max*1000, "maxATE_mm")
}

// BenchmarkAblation_IntegrationRate1 integrates every frame.
func BenchmarkAblation_IntegrationRate1(b *testing.B) { benchIntegrationRate(b, 1) }

// BenchmarkAblation_IntegrationRate4 integrates every 4th frame.
func BenchmarkAblation_IntegrationRate4(b *testing.B) { benchIntegrationRate(b, 4) }

// BenchmarkAblation_ReconstructionError measures comparing a mesh against
// the analytic ground-truth scene.
func BenchmarkAblation_ReconstructionError(b *testing.B) {
	seq := sequence(b)
	sys := slambench.NewKFusion(tunedConfig(), seq)
	if _, err := (&slambench.Runner{}).Run(sys, seq); err != nil {
		b.Fatal(err)
	}
	mesh := sys.Pipeline().Volume().ExtractMesh()
	scene := sdf.LivingRoom()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := slambench.ReconstructionError(mesh, scene, 20000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_MeshExtraction measures marching-tetrahedra export.
func BenchmarkAblation_MeshExtraction(b *testing.B) {
	seq := sequence(b)
	sys := slambench.NewKFusion(tunedConfig(), seq)
	if _, err := (&slambench.Runner{}).Run(sys, seq); err != nil {
		b.Fatal(err)
	}
	vol := sys.Pipeline().Volume()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := vol.ExtractMesh()
		if len(m.Triangles) == 0 {
			b.Fatal("empty mesh")
		}
	}
}

// BenchmarkAblation_DecisionMachine measures training the per-device
// configuration recommender (the paper's stated future work).
func BenchmarkAblation_DecisionMachine(b *testing.B) {
	scale := core.QuickScale()
	scale.Frames = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunDecisionMachine(core.DefaultCandidates(), scale, 0.1, 42); err != nil {
			b.Fatal(err)
		}
	}
}
